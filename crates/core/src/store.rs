//! Content-addressed artifact store for pipeline stage outputs.
//!
//! Each stage of the FFM pipeline produces an [`Artifact`] keyed by a
//! [`StageKey`]: a stable 128-bit digest of everything the stage's output
//! depends on — the stage name, a schema version, the application's input
//! digest, the declared config fields the stage reads, and the keys of
//! its upstream artifacts (see `engine::stage_key` for the keying rules).
//! Two sweep cells whose keys collide *by construction* would compute the
//! same bytes, so the store can hand the second cell the first cell's
//! result.
//!
//! The store has two layers:
//!
//! - an in-memory map (always on), shared across the cells of one sweep;
//! - an optional on-disk layer under `results/cache/`, so separate
//!   processes (e.g. `--shard k/n` workers) and repeated runs share work.
//!
//! Disk entries are FFB containers (see [`crate::codec`]): every file
//! carries a magic, the codec [`SCHEMA_VERSION`], a build tag derived
//! from the running binary, and a payload checksum, so an old or
//! corrupted cache can never poison a new binary's reports — mismatched
//! entries read as misses and `clear_cache` can purge them.

use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use gpu_sim::Digest;
use instrument::Discovery;

use crate::analysis::Analysis;
use crate::codec;
use crate::records::{Stage1Result, Stage2Result, Stage3Result, Stage4Result};

pub use crate::codec::SCHEMA_VERSION;

/// Extension for on-disk artifacts; cache hygiene only ever touches
/// `*.art` (and `*.claim`) files.
const EXT: &str = "art";

/// Extension for claim files (`<entry>.claim` next to the entry they
/// guard); see [`ArtifactStore::try_claim`].
const CLAIM_EXT: &str = "claim";

// ---------------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------------

/// Content-address of a stage output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StageKey(pub u128);

impl StageKey {
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

/// 128-bit FNV-style hasher used to build [`StageKey`]s.
///
/// Two independent 64-bit FNV-1a lanes with distinct offset bases; the
/// second lane additionally whitens each byte so the lanes cannot cancel.
/// Not cryptographic — collision resistance here only has to beat
/// accidental config collisions, and any collision is between configs the
/// operator chose, not adversarial input.
pub struct KeyHasher {
    a: u64,
    b: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl KeyHasher {
    /// Start a key with a domain-separating label (e.g. the stage name).
    pub fn new(label: &str) -> Self {
        let mut h = KeyHasher { a: FNV_OFFSET, b: FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15 };
        h.push_bytes(label.as_bytes());
        h.push_u32(SCHEMA_VERSION);
        h
    }

    pub fn push_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a ^= byte as u64;
            self.a = self.a.wrapping_mul(FNV_PRIME);
            self.b ^= (byte ^ 0xa5) as u64;
            self.b = self.b.wrapping_mul(FNV_PRIME);
        }
    }

    pub fn push_u32(&mut self, v: u32) {
        self.push_bytes(&v.to_le_bytes());
    }

    pub fn push_u64(&mut self, v: u64) {
        self.push_bytes(&v.to_le_bytes());
    }

    /// Length-prefixed so `("ab","c")` and `("a","bc")` hash differently.
    pub fn push_str(&mut self, s: &str) {
        self.push_u64(s.len() as u64);
        self.push_bytes(s.as_bytes());
    }

    /// Fold an upstream stage key into this one.
    pub fn push_key(&mut self, key: StageKey) {
        self.push_bytes(&key.0.to_le_bytes());
    }

    pub fn finish(&self) -> StageKey {
        StageKey(((self.a as u128) << 64) | self.b as u128)
    }
}

// ---------------------------------------------------------------------------
// Artifacts
// ---------------------------------------------------------------------------

/// A memoized stage output. Payloads are `Arc`-shared so a cache hit
/// costs a pointer copy, not a deep clone.
#[derive(Debug, Clone)]
pub enum Artifact {
    Discovery(Arc<Discovery>),
    Stage1(Arc<Stage1Result>),
    Stage2(Arc<Stage2Result>),
    Stage3(Arc<Stage3Result>),
    Stage4(Arc<Stage4Result>),
    /// Analysis results are memory-only: they are cheap to recompute
    /// relative to their serialized size and sit at the bottom of the DAG.
    Analysis(Arc<Analysis>),
}

/// Discriminant used for disk filenames and header tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    Discovery,
    Stage1,
    Stage2,
    Stage3,
    Stage4,
    Analysis,
}

impl ArtifactKind {
    pub fn tag(&self) -> &'static str {
        match self {
            ArtifactKind::Discovery => "discovery",
            ArtifactKind::Stage1 => "stage1",
            ArtifactKind::Stage2 => "stage2",
            ArtifactKind::Stage3 => "stage3",
            ArtifactKind::Stage4 => "stage4",
            ArtifactKind::Analysis => "analysis",
        }
    }

    pub(crate) fn byte(&self) -> u8 {
        match self {
            ArtifactKind::Discovery => 0,
            ArtifactKind::Stage1 => 1,
            ArtifactKind::Stage2 => 2,
            ArtifactKind::Stage3 => 3,
            ArtifactKind::Stage4 => 4,
            ArtifactKind::Analysis => 5,
        }
    }
}

impl Artifact {
    pub fn kind(&self) -> ArtifactKind {
        match self {
            Artifact::Discovery(_) => ArtifactKind::Discovery,
            Artifact::Stage1(_) => ArtifactKind::Stage1,
            Artifact::Stage2(_) => ArtifactKind::Stage2,
            Artifact::Stage3(_) => ArtifactKind::Stage3,
            Artifact::Stage4(_) => ArtifactKind::Stage4,
            Artifact::Analysis(_) => ArtifactKind::Analysis,
        }
    }
}

// ---------------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------------

/// Cache hit/miss counters, snapshot via [`ArtifactStore::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    pub mem_hits: u64,
    pub disk_hits: u64,
    pub misses: u64,
    pub puts: u64,
}

impl StoreStats {
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }

    /// Hit rate over all lookups; 0.0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }
}

/// Memoizes stage outputs by [`StageKey`].
pub struct ArtifactStore {
    mem: Mutex<HashMap<StageKey, Artifact>>,
    disk: Option<PathBuf>,
    claim_ttl: Duration,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    puts: AtomicU64,
}

impl ArtifactStore {
    /// Memory-only store (one process, one sweep).
    pub fn in_memory() -> Self {
        ArtifactStore {
            mem: Mutex::new(HashMap::new()),
            disk: None,
            claim_ttl: DEFAULT_CLAIM_TTL,
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            puts: AtomicU64::new(0),
        }
    }

    /// Store backed by a directory (created on first write). Shard
    /// processes pointed at the same directory share work.
    pub fn with_disk(dir: impl Into<PathBuf>) -> Self {
        let mut s = ArtifactStore::in_memory();
        s.disk = Some(dir.into());
        s
    }

    /// Override how long a peer's claim file is honored before being
    /// treated as abandoned (a crashed or wedged holder).
    pub fn with_claim_ttl(mut self, ttl: Duration) -> Self {
        self.claim_ttl = ttl;
        self
    }

    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk.as_deref()
    }

    /// Look up an artifact. Checks memory first, then disk (promoting a
    /// disk hit into memory). A corrupt or version-mismatched disk entry
    /// reads as a miss.
    pub fn get(&self, key: StageKey, kind: ArtifactKind) -> Option<Artifact> {
        if let Some(a) = self.mem.lock().unwrap().get(&key) {
            self.mem_hits.fetch_add(1, Ordering::Relaxed);
            return Some(a.clone());
        }
        if let Some(dir) = &self.disk {
            if let Some(a) = read_entry(&entry_path(dir, key, kind), kind) {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.mem.lock().unwrap().insert(key, a.clone());
                return Some(a);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Insert an artifact. Writes through to disk (atomically, so racing
    /// shard processes are safe) except for memory-only kinds.
    pub fn put(&self, key: StageKey, artifact: Artifact) {
        self.puts.fetch_add(1, Ordering::Relaxed);
        if let Some(dir) = &self.disk {
            let path = entry_path(dir, key, artifact.kind());
            if let Err(e) = write_entry(&path, &artifact) {
                crate::log_warn!("cache write failed for {}: {e}", path.display());
            }
        }
        self.mem.lock().unwrap().insert(key, artifact);
    }

    pub fn stats(&self) -> StoreStats {
        StoreStats {
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
        }
    }

    /// Announce an intent to compute `key` so concurrent workers (threads
    /// of this process or shard processes on the same cache directory)
    /// don't duplicate the effort. Returns `None` when the store has no
    /// disk layer or the filesystem refuses — claims are strictly
    /// best-effort and never affect correctness: the caller computes
    /// without one and last-write-wins semantics stay unchanged.
    ///
    /// A claim is a `<entry>.claim` file created with `O_EXCL`, so exactly
    /// one worker wins the race. The payload (pid + build tag) is for
    /// humans debugging a wedged cache; liveness is judged purely by the
    /// file's age against the store's claim TTL — a claim older than the
    /// TTL belonged to a crashed or hung holder and is broken on sight.
    pub fn try_claim(&self, key: StageKey, kind: ArtifactKind) -> Option<Claim> {
        let dir = self.disk.as_deref()?;
        let path = claim_path(dir, key, kind);
        if std::fs::create_dir_all(dir).is_err() {
            return None;
        }
        for attempt in 0..2 {
            match std::fs::OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    let _ = writeln!(f, "pid={}\nbuild={:016x}", std::process::id(), build_tag());
                    return Some(Claim::Acquired(ClaimGuard { path }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if attempt == 0 && claim_age(&path).is_none_or(|age| age > self.claim_ttl) {
                        // Stale (or vanished mid-race): break it and retry
                        // the exclusive create once.
                        crate::log_debug!("breaking stale claim {}", path.display());
                        let _ = std::fs::remove_file(&path);
                        continue;
                    }
                    return Some(Claim::Held);
                }
                Err(_) => return None,
            }
        }
        Some(Claim::Held)
    }

    /// Claim files currently present in the disk layer — computations
    /// some worker (this process or a rival on the same cache directory)
    /// has staked but not yet delivered. Always `0` for memory-only
    /// stores. Purely observational: the count can go stale the moment
    /// it is read, which is fine for the `/stats` reporting it feeds.
    pub fn live_claims(&self) -> usize {
        let Some(dir) = &self.disk else { return 0 };
        std::fs::read_dir(dir)
            .map(|rd| {
                rd.flatten()
                    .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some(CLAIM_EXT))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Wait for a peer's claimed computation of `key` to land. Polls the
    /// disk entry until it appears (promoted into memory and returned as
    /// a disk hit), the claim file disappears or goes stale, or the claim
    /// TTL elapses — whichever comes first. `None` means the peer never
    /// delivered; the caller should compute the artifact itself.
    pub fn wait_for_claimed(&self, key: StageKey, kind: ArtifactKind) -> Option<Artifact> {
        let dir = self.disk.as_deref()?;
        let entry = entry_path(dir, key, kind);
        let claim = claim_path(dir, key, kind);
        let poll = (self.claim_ttl / 50).clamp(Duration::from_millis(1), Duration::from_millis(25));
        let deadline = std::time::Instant::now() + self.claim_ttl;
        loop {
            if let Some(a) = read_entry(&entry, kind) {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.mem.lock().unwrap().insert(key, a.clone());
                return Some(a);
            }
            let gone = match claim_age(&claim) {
                None => true,                      // released without delivering
                Some(age) => age > self.claim_ttl, // holder crashed or hung
            };
            if gone || std::time::Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(poll);
        }
    }
}

/// How long a claim file is honored by default before being treated as
/// abandoned. Generous relative to any single stage's compute time so a
/// slow-but-alive holder is never preempted, yet bounded so a crashed
/// shard can't wedge the cache directory forever.
pub const DEFAULT_CLAIM_TTL: Duration = Duration::from_secs(30);

/// Outcome of [`ArtifactStore::try_claim`].
pub enum Claim {
    /// This worker owns the claim; compute and `put`, then drop the guard.
    Acquired(ClaimGuard),
    /// Another live worker is already computing this artifact.
    Held,
}

/// RAII release of a claim file: dropping the guard (success or panic)
/// deletes the claim so waiters stop polling immediately instead of
/// running out the TTL.
pub struct ClaimGuard {
    path: PathBuf,
}

impl Drop for ClaimGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

fn claim_path(dir: &Path, key: StageKey, kind: ArtifactKind) -> PathBuf {
    dir.join(format!("{}-{}.{CLAIM_EXT}", kind.tag(), key.hex()))
}

/// Age of a claim file, `None` if it does not exist (or mtime is
/// unreadable, which we treat the same way: nothing to honor).
fn claim_age(path: &Path) -> Option<Duration> {
    let modified = std::fs::metadata(path).ok()?.modified().ok()?;
    Some(modified.elapsed().unwrap_or(Duration::ZERO))
}

fn entry_path(dir: &Path, key: StageKey, kind: ArtifactKind) -> PathBuf {
    dir.join(format!("{}-{}.{EXT}", kind.tag(), key.hex()))
}

/// Tag identifying the producing binary, folded into every disk entry's
/// header. Derived from a digest of the executable image, so a rebuilt
/// binary (whose stage semantics may have changed in ways the schema
/// version does not capture) never trusts an old cache.
pub fn build_tag() -> u64 {
    static TAG: OnceLock<u64> = OnceLock::new();
    *TAG.get_or_init(|| {
        std::env::current_exe()
            .ok()
            .and_then(|p| std::fs::read(p).ok())
            .map(|bytes| Digest::of(&bytes).0 as u64)
            .unwrap_or(0)
    })
}

fn write_entry(path: &Path, artifact: &Artifact) -> std::io::Result<()> {
    let dir = path.parent().expect("entry path has a parent");
    std::fs::create_dir_all(dir)?;
    // Stream to a unique temp file then rename: concurrent shard processes
    // may race on the same key, and rename makes the last writer win with
    // no torn reads. The temp file is opened read+write because the
    // streaming writer re-reads what it wrote to back-patch the checksum.
    let tmp = dir.join(format!(
        ".tmp-{}-{}",
        std::process::id(),
        path.file_name().unwrap_or_default().to_string_lossy()
    ));
    let written = {
        let mut f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        match codec::write_artifact_to(&mut f, artifact) {
            Ok(written) => written,
            Err(e) => {
                drop(f);
                let _ = std::fs::remove_file(&tmp);
                return Err(std::io::Error::other(e));
            }
        }
    };
    if !written {
        // Memory-only kind: nothing to persist.
        let _ = std::fs::remove_file(&tmp);
        return Ok(());
    }
    std::fs::rename(&tmp, path)
}

/// Read one disk entry. Absence is an ordinary miss; anything else wrong
/// with the entry is reported through [`crate::log`] — a corrupt file
/// should never be silently indistinguishable from a cold cache. The
/// header is validated before the payload is touched, so a stale or
/// mangled entry costs one 33-byte read, not a full decode, and the
/// payload lands in a pooled ingest buffer instead of a fresh allocation.
fn read_entry(path: &Path, kind: ArtifactKind) -> Option<Artifact> {
    let mut file = std::fs::File::open(path).ok()?;
    let mut header = [0u8; codec::HEADER_LEN];
    if let Err(e) = file.read_exact(&mut header) {
        crate::log_warn!(
            "corrupt cache entry {} (truncated: {e}); treating as a miss",
            path.display()
        );
        return None;
    }
    match codec::check_entry_header(&header) {
        Ok(()) => {}
        Err(codec::HeaderIssue::Stale(why)) => {
            // Expected after rebuilds or schema bumps — debug, not warn.
            crate::log_debug!("stale cache entry {} ({why}); treating as a miss", path.display());
            return None;
        }
        Err(codec::HeaderIssue::Corrupt(why)) => {
            crate::log_warn!("corrupt cache entry {} ({why}); treating as a miss", path.display());
            return None;
        }
    }
    let mut buf = crate::iobuf::acquire();
    buf.extend_from_slice(&header);
    if let Err(e) = file.read_to_end(&mut buf) {
        crate::log_warn!(
            "corrupt cache entry {} (read failed: {e}); treating as a miss",
            path.display()
        );
        return None;
    }
    match codec::decode_artifact(&buf, kind) {
        Ok(a) => Some(a),
        Err(e) => {
            crate::log_warn!("corrupt cache entry {} ({e}); treating as a miss", path.display());
            None
        }
    }
}

/// Check an entry's header without reading its payload.
fn entry_header_is_current(path: &Path) -> bool {
    let mut header = [0u8; codec::HEADER_LEN];
    let Ok(mut f) = std::fs::File::open(path) else { return false };
    f.read_exact(&mut header).is_ok() && codec::header_is_current(&header)
}

// ---------------------------------------------------------------------------
// Cache hygiene
// ---------------------------------------------------------------------------

/// What `diogenes cache` reports: current vs stale entries in a cache
/// directory. Stale = written by a different schema version or binary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheReport {
    pub entries: usize,
    pub bytes: u64,
    pub stale_entries: usize,
    pub stale_bytes: u64,
}

fn cache_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    if !dir.exists() {
        return Ok(files);
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_file() && path.extension().and_then(|e| e.to_str()) == Some(EXT) {
            files.push(path);
        }
    }
    files.sort();
    Ok(files)
}

/// Inventory a cache directory without modifying it. A missing directory
/// reads as empty. Only `*.art` files are considered.
pub fn scan_cache(dir: &Path) -> std::io::Result<CacheReport> {
    let mut report = CacheReport::default();
    for path in cache_files(dir)? {
        let len = std::fs::metadata(&path)?.len();
        let current = entry_header_is_current(&path);
        report.entries += 1;
        report.bytes += len;
        if !current {
            report.stale_entries += 1;
            report.stale_bytes += len;
        }
    }
    Ok(report)
}

/// Delete cache entries; returns what was removed. With `stale_only`,
/// keeps entries the current binary can still read. Claim files left by
/// crashed workers are swept in either mode (the TTL already makes them
/// harmless; this is disk hygiene) — they are not counted as entries.
pub fn clear_cache(dir: &Path, stale_only: bool) -> std::io::Result<CacheReport> {
    let mut removed = CacheReport::default();
    if dir.exists() {
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.is_file() && path.extension().and_then(|e| e.to_str()) == Some(CLAIM_EXT) {
                let _ = std::fs::remove_file(&path);
            }
        }
    }
    for path in cache_files(dir)? {
        let len = std::fs::metadata(&path)?.len();
        let current = entry_header_is_current(&path);
        if stale_only && current {
            continue;
        }
        std::fs::remove_file(&path)?;
        removed.entries += 1;
        removed.bytes += len;
        if !current {
            removed.stale_entries += 1;
            removed.stale_bytes += len;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    use cuda_driver::ApiFn;
    use gpu_sim::{Direction, Frame, SourceLoc, StackTrace, WaitReason};

    use crate::records::{DuplicateTransfer, OpInstance, ProtectedAccess, TracedCall, TransferRec};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "diogenes-store-test-{}-{}-{}",
            std::process::id(),
            tag,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_loc(line: u32) -> SourceLoc {
        SourceLoc::new("als.cpp", line)
    }

    fn sample_stage2() -> Stage2Result {
        Stage2Result {
            exec_time_ns: 123_456,
            calls: vec![TracedCall {
                seq: 0,
                api: ApiFn::CudaMemcpy,
                site: sample_loc(856),
                stack: StackTrace {
                    frames: vec![
                        Frame::new("main", sample_loc(1)),
                        Frame::new("thrust::copy<float>", sample_loc(856)),
                    ],
                },
                sig: 0xdead_beef,
                folded_sig: 0xfeed_face,
                occ: 3,
                enter_ns: 10,
                exit_ns: 90,
                wait_ns: 40,
                wait_reason: Some(WaitReason::Implicit),
                transfer: Some(TransferRec {
                    dir: Direction::DtoH,
                    bytes: 4096,
                    host: 0x1000,
                    dev: 0x2000,
                    pinned: false,
                    is_async: true,
                }),
                is_launch: false,
            }],
        }
    }

    fn sample_stage3() -> Stage3Result {
        Stage3Result {
            required_syncs: [OpInstance { sig: 1, occ: 0 }].into_iter().collect(),
            observed_syncs: [OpInstance { sig: 1, occ: 0 }, OpInstance { sig: 2, occ: 1 }]
                .into_iter()
                .collect(),
            accesses: vec![ProtectedAccess {
                sync: OpInstance { sig: 1, occ: 0 },
                access_site: sample_loc(901),
                rough_gap_ns: 77,
            }],
            duplicates: vec![DuplicateTransfer {
                op: OpInstance { sig: 9, occ: 2 },
                site: sample_loc(10),
                first_site: sample_loc(5),
                bytes: 1 << 20,
                digest: Digest(0x1234_5678_9abc_def0_1122_3344_5566_7788),
            }],
            first_use_sites: [sample_loc(901), sample_loc(905)].into_iter().collect(),
            hashed_bytes: 1 << 21,
            exec_time_sync_ns: 1000,
            exec_time_hash_ns: 2000,
            exec_time_ns: 3000,
        }
    }

    #[test]
    fn memory_store_hits_and_stats() {
        let store = ArtifactStore::in_memory();
        let key = StageKey(42);
        assert!(store.get(key, ArtifactKind::Stage1).is_none());
        store.put(
            key,
            Artifact::Stage1(Arc::new(Stage1Result {
                exec_time_ns: 1,
                sync_apis: HashMap::new(),
                total_wait_ns: 0,
                sync_hits: 0,
            })),
        );
        assert!(store.get(key, ArtifactKind::Stage1).is_some());
        let stats = store.stats();
        assert_eq!(stats.mem_hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.puts, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disk_store_roundtrips_and_survives_memory_loss() {
        let dir = temp_dir("disk");
        let key = StageKey(7);
        {
            let store = ArtifactStore::with_disk(&dir);
            store.put(key, Artifact::Stage3(Arc::new(sample_stage3())));
        }
        // Fresh store, same dir: memory is gone, disk must serve the hit.
        let store = ArtifactStore::with_disk(&dir);
        let got = store.get(key, ArtifactKind::Stage3).expect("disk hit");
        match got {
            Artifact::Stage3(s) => assert_eq!(s.exec_time_ns, 3000),
            other => panic!("wrong kind {:?}", other.kind()),
        }
        assert_eq!(store.stats().disk_hits, 1);
        // Second get is served from memory (promotion).
        store.get(key, ArtifactKind::Stage3).expect("promoted");
        assert_eq!(store.stats().mem_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn empty_analysis() -> Analysis {
        Analysis {
            graph: crate::graph::ExecGraph {
                nodes: Vec::new(),
                exec_time_ns: 0,
                baseline_exec_ns: 0,
            },
            benefit: crate::benefit::BenefitReport {
                per_node: Vec::new(),
                total_ns: 0,
                predicted_exec_ns: 0,
            },
            problems: Vec::new(),
            single_point: Vec::new(),
            api_folds: Vec::new(),
            sequences: Vec::new(),
            by_api: Vec::new(),
            baseline_exec_ns: 0,
        }
    }

    #[test]
    fn analysis_artifacts_stay_out_of_the_disk_layer() {
        let dir = temp_dir("analysis");
        let store = ArtifactStore::with_disk(&dir);
        store.put(StageKey(1), Artifact::Analysis(Arc::new(empty_analysis())));
        assert_eq!(scan_cache(&dir).unwrap().entries, 0, "no disk entry for analysis");
        assert!(store.get(StageKey(1), ArtifactKind::Analysis).is_some(), "memory hit works");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_entries_read_as_misses_and_are_clearable() {
        let dir = temp_dir("stale");
        let store = ArtifactStore::with_disk(&dir);
        let key = StageKey(9);
        store.put(
            key,
            Artifact::Stage1(Arc::new(Stage1Result {
                exec_time_ns: 5,
                sync_apis: HashMap::new(),
                total_wait_ns: 0,
                sync_hits: 0,
            })),
        );
        // Corrupt the entry's build tag (bytes 12..20 of the header).
        let path = entry_path(&dir, key, ArtifactKind::Stage1);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[12] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let fresh = ArtifactStore::with_disk(&dir);
        assert!(fresh.get(key, ArtifactKind::Stage1).is_none(), "stale entry is a miss");

        let report = scan_cache(&dir).unwrap();
        assert_eq!(report.entries, 1);
        assert_eq!(report.stale_entries, 1);
        assert!(report.bytes > 0);

        // stale_only clear removes it; a current entry would survive.
        let removed = clear_cache(&dir, true).unwrap();
        assert_eq!(removed.entries, 1);
        assert_eq!(scan_cache(&dir).unwrap().entries, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_all_removes_current_entries_too() {
        let dir = temp_dir("clearall");
        let store = ArtifactStore::with_disk(&dir);
        store.put(StageKey(1), Artifact::Stage4(Arc::new(Stage4Result::default())));
        store.put(StageKey(2), Artifact::Stage4(Arc::new(Stage4Result::default())));
        assert_eq!(scan_cache(&dir).unwrap().entries, 2);
        let removed = clear_cache(&dir, false).unwrap();
        assert_eq!(removed.entries, 2);
        assert_eq!(removed.stale_entries, 0);
        assert_eq!(scan_cache(&dir).unwrap().entries, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_of_missing_dir_is_empty() {
        let dir = temp_dir("missing");
        let report = scan_cache(&dir).unwrap();
        assert_eq!(report, CacheReport::default());
    }

    #[test]
    fn key_hasher_separates_labels_fields_and_order() {
        let mut a = KeyHasher::new("stage1");
        a.push_u64(5);
        let mut b = KeyHasher::new("stage2");
        b.push_u64(5);
        assert_ne!(a.finish(), b.finish(), "label is domain-separating");

        let mut c = KeyHasher::new("x");
        c.push_str("ab");
        c.push_str("c");
        let mut d = KeyHasher::new("x");
        d.push_str("a");
        d.push_str("bc");
        assert_ne!(c.finish(), d.finish(), "length prefix prevents aliasing");

        let mut e = KeyHasher::new("x");
        e.push_u64(1);
        e.push_u64(2);
        let mut f = KeyHasher::new("x");
        f.push_u64(2);
        f.push_u64(1);
        assert_ne!(e.finish(), f.finish(), "order matters");
    }

    #[test]
    fn interner_dedups() {
        let a = crate::intern::intern("some-file.cpp");
        let b = crate::intern::intern("some-file.cpp");
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.resolve(), b.resolve()));
    }

    #[test]
    fn claim_is_exclusive_and_released_on_drop() {
        let dir = temp_dir("claim-excl");
        let store = ArtifactStore::with_disk(&dir);
        let key = StageKey(0xc1a1);
        let guard = match store.try_claim(key, ArtifactKind::Stage1) {
            Some(Claim::Acquired(g)) => g,
            _ => panic!("first claim should acquire"),
        };
        // The claim file exists and carries the pid + build tag payload.
        let path = claim_path(&dir, key, ArtifactKind::Stage1);
        let payload = std::fs::read_to_string(&path).unwrap();
        assert!(payload.contains(&format!("pid={}", std::process::id())), "{payload}");
        assert!(payload.contains(&format!("build={:016x}", build_tag())), "{payload}");
        // A second claimant (same or another process) sees it held.
        assert!(matches!(store.try_claim(key, ArtifactKind::Stage1), Some(Claim::Held)));
        // Releasing the guard frees the key for the next claimant.
        drop(guard);
        assert!(!path.exists(), "drop removes the claim file");
        assert!(matches!(store.try_claim(key, ArtifactKind::Stage1), Some(Claim::Acquired(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_only_store_never_claims() {
        let store = ArtifactStore::in_memory();
        assert!(store.try_claim(StageKey(1), ArtifactKind::Stage1).is_none());
        assert!(store.wait_for_claimed(StageKey(1), ArtifactKind::Stage1).is_none());
        assert_eq!(store.live_claims(), 0);
    }

    #[test]
    fn live_claims_counts_staked_and_released_claims() {
        let dir = temp_dir("claim-count");
        let store = ArtifactStore::with_disk(&dir);
        assert_eq!(store.live_claims(), 0, "missing dir reads as no claims");
        let g1 = match store.try_claim(StageKey(1), ArtifactKind::Stage1) {
            Some(Claim::Acquired(g)) => g,
            _ => panic!("claim 1 should acquire"),
        };
        let g2 = match store.try_claim(StageKey(2), ArtifactKind::Stage2) {
            Some(Claim::Acquired(g)) => g,
            _ => panic!("claim 2 should acquire"),
        };
        assert_eq!(store.live_claims(), 2);
        drop(g1);
        assert_eq!(store.live_claims(), 1);
        drop(g2);
        assert_eq!(store.live_claims(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_claim_is_broken() {
        let dir = temp_dir("claim-stale");
        // TTL zero: any existing claim is immediately abandoned.
        let store = ArtifactStore::with_disk(&dir).with_claim_ttl(Duration::ZERO);
        let key = StageKey(0x57a1e);
        let holder = ArtifactStore::with_disk(&dir);
        let _abandoned = match holder.try_claim(key, ArtifactKind::Stage2) {
            Some(Claim::Acquired(g)) => g,
            _ => panic!("holder should acquire"),
        };
        // The zero-TTL store treats the live claim as stale, breaks it,
        // and acquires its own.
        assert!(matches!(store.try_claim(key, ArtifactKind::Stage2), Some(Claim::Acquired(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn waiter_picks_up_the_holders_entry() {
        let dir = temp_dir("claim-wait");
        let store = ArtifactStore::with_disk(&dir).with_claim_ttl(Duration::from_secs(5));
        let key = StageKey(0xacd7);
        let holder = ArtifactStore::with_disk(&dir);
        let guard = match holder.try_claim(key, ArtifactKind::Stage2) {
            Some(Claim::Acquired(g)) => g,
            _ => panic!("holder should acquire"),
        };
        assert!(matches!(store.try_claim(key, ArtifactKind::Stage2), Some(Claim::Held)));
        // The holder delivers from another thread while the waiter polls.
        let deliver = std::thread::spawn({
            let dir = dir.clone();
            move || {
                std::thread::sleep(Duration::from_millis(20));
                let holder = ArtifactStore::with_disk(&dir);
                holder.put(key, Artifact::Stage2(Arc::new(sample_stage2())));
                drop(guard);
            }
        });
        let got = store.wait_for_claimed(key, ArtifactKind::Stage2);
        deliver.join().unwrap();
        match got {
            Some(Artifact::Stage2(s)) => assert_eq!(s.exec_time_ns, sample_stage2().exec_time_ns),
            other => panic!("expected the delivered stage2, got {:?}", other.map(|a| a.kind())),
        }
        assert_eq!(store.stats().disk_hits, 1, "delivery counts as a disk hit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn waiter_gives_up_when_the_holder_vanishes() {
        let dir = temp_dir("claim-vanish");
        let store = ArtifactStore::with_disk(&dir).with_claim_ttl(Duration::from_secs(5));
        let key = StageKey(0xdead);
        let holder = ArtifactStore::with_disk(&dir);
        let guard = match holder.try_claim(key, ArtifactKind::Stage1) {
            Some(Claim::Acquired(g)) => g,
            _ => panic!("holder should acquire"),
        };
        // Claim released without an entry (holder failed): the waiter
        // returns promptly so the caller computes it itself.
        drop(guard);
        let t0 = std::time::Instant::now();
        assert!(store.wait_for_claimed(key, ArtifactKind::Stage1).is_none());
        assert!(t0.elapsed() < Duration::from_secs(2), "no TTL-length stall");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_cache_sweeps_claim_files() {
        let dir = temp_dir("claim-sweep");
        let store = ArtifactStore::with_disk(&dir);
        let key = StageKey(0x5eed);
        let guard = match store.try_claim(key, ArtifactKind::Stage1) {
            Some(Claim::Acquired(g)) => g,
            _ => panic!("claim should acquire"),
        };
        std::mem::forget(guard); // simulate a crashed holder
        let path = claim_path(&dir, key, ArtifactKind::Stage1);
        assert!(path.exists());
        clear_cache(&dir, true).unwrap();
        assert!(!path.exists(), "hygiene removes orphaned claims");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
