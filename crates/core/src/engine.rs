//! The stage engine: the FFM pipeline as an explicit DAG of keyed stages.
//!
//! Each pipeline step — discovery, stages 1–4 (with stage 3 split into
//! its sync and hash runs plus a merge), and the stage 5 analysis — is a
//! [`StageId`] with a declared dependency list ([`deps`]) and a declared
//! set of config fields it reads ([`declared_fields`]). A stage's output
//! is an [`Artifact`] content-addressed by [`stage_key`]:
//!
//! ```text
//! key(stage) = H(stage name, SCHEMA_VERSION,
//!               app.input_digest()      [stages that run the app],
//!               declared config fields  [read via sweep::get_field],
//!               key(dep) for each dependency)
//! ```
//!
//! Keying rules worth calling out:
//!
//! - **`jobs` is never keyed.** Reports are bit-identical across worker
//!   counts (pinned by the determinism suite), so parallelism must not
//!   fragment the cache.
//! - **Discovery keys on cost only.** `identify_sync_function` probes a
//!   throwaway context built from the [`gpu_sim::CostModel`] alone — it
//!   never sees the app or the [`cuda_driver::DriverConfig`] — so
//!   discovery is shared across apps and driver configs.
//! - **Exclusion must be proven.** A stage's field set only omits a
//!   config field when the stage provably cannot read it (e.g. the hash
//!   cost fields are charged exclusively in the stage 3 hashing run).
//!   When in doubt a field is included: over-keying costs a cache miss,
//!   under-keying corrupts reports.
//! - **Dep keys propagate invalidation.** Changing a field re-keys the
//!   stages that read it *and* everything downstream of them.
//!
//! [`run_stages`] schedules ready stages onto the shared [`crate::par`]
//! pool (at most [`MAX_STAGE_WIDTH`] concurrent — the DAG is never wider)
//! and consults an optional [`ArtifactStore`] before executing each
//! stage, recording per-stage hit/miss counters in telemetry. With
//! `jobs <= 1` everything runs inline on the caller's thread in the
//! classic sequential order.

use std::sync::{Arc, Condvar, Mutex};

use cuda_driver::{CudaResult, GpuApp};
use instrument::identify_sync_function;

use crate::analysis::Analysis;
use crate::par::par_map;
use crate::pipeline::FfmConfig;
use crate::records::{Stage1Result, Stage2Result, Stage3Result, Stage4Result};
use crate::stages::{
    merge_stage3, run_stage1, run_stage2, run_stage3_hash, run_stage3_sync, run_stage4,
};
use crate::store::{Artifact, ArtifactKind, ArtifactStore, Claim, KeyHasher, StageKey};
use crate::sweep::get_field;
use crate::telemetry;
use instrument::Discovery;

/// The stages of the pipeline, in classic sequential order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageId {
    Discovery,
    Stage1,
    Stage2,
    Stage3a,
    Stage3b,
    Merge3,
    Stage4,
    Stage5,
}

pub const STAGE_COUNT: usize = 8;

/// Widest the DAG ever gets (discovery ∥ stage1, then stage2 ∥ 3a ∥ 3b
/// with stage4 chasing 3a); more workers than this would only idle.
pub const MAX_STAGE_WIDTH: usize = 4;

impl StageId {
    /// All stages, in classic sequential order — which is also a
    /// topological order (every stage appears after its dependencies),
    /// and the order used to pick which error to report when several
    /// stages fail.
    pub const ALL: [StageId; STAGE_COUNT] = [
        StageId::Discovery,
        StageId::Stage1,
        StageId::Stage2,
        StageId::Stage3a,
        StageId::Stage3b,
        StageId::Merge3,
        StageId::Stage4,
        StageId::Stage5,
    ];

    pub fn index(self) -> usize {
        StageId::ALL.iter().position(|&s| s == self).expect("ALL is exhaustive")
    }

    /// Stable name, used both as the telemetry span label and as the
    /// domain separator in the stage key.
    pub fn name(self) -> &'static str {
        match self {
            StageId::Discovery => "discovery",
            StageId::Stage1 => "stage1-baseline",
            StageId::Stage2 => "stage2-detailed-tracing",
            StageId::Stage3a => "stage3a-memory-tracing",
            StageId::Stage3b => "stage3b-data-hashing",
            StageId::Merge3 => "stage3-merge",
            StageId::Stage4 => "stage4-sync-use",
            StageId::Stage5 => "stage5-analysis",
        }
    }

    /// Whether this stage executes the application (and therefore keys
    /// on the app's input digest). Discovery probes a throwaway context;
    /// the merge and the analysis are pure functions of their inputs.
    pub fn runs_app(self) -> bool {
        matches!(
            self,
            StageId::Stage1
                | StageId::Stage2
                | StageId::Stage3a
                | StageId::Stage3b
                | StageId::Stage4
        )
    }

    /// The artifact kind this stage produces.
    pub fn kind(self) -> ArtifactKind {
        match self {
            StageId::Discovery => ArtifactKind::Discovery,
            StageId::Stage1 => ArtifactKind::Stage1,
            StageId::Stage2 => ArtifactKind::Stage2,
            StageId::Stage3a | StageId::Stage3b | StageId::Merge3 => ArtifactKind::Stage3,
            StageId::Stage4 => ArtifactKind::Stage4,
            StageId::Stage5 => ArtifactKind::Analysis,
        }
    }
}

/// Input edges of the DAG (see the module docs of [`crate::pipeline`]
/// for the picture). Order matters: [`stage_key`] folds dep keys in this
/// order, and [`execute`] receives dep artifacts in this order.
pub fn deps(id: StageId) -> &'static [StageId] {
    match id {
        StageId::Discovery | StageId::Stage1 => &[],
        StageId::Stage2 | StageId::Stage3a | StageId::Stage3b => &[StageId::Stage1],
        StageId::Merge3 => &[StageId::Stage3a, StageId::Stage3b],
        StageId::Stage4 => &[StageId::Stage1, StageId::Stage3a],
        StageId::Stage5 => &[StageId::Stage1, StageId::Stage2, StageId::Merge3, StageId::Stage4],
    }
}

/// Cost-model fields every simulated run reads (everything except the
/// hash and load/store instrumentation costs, which only specific runs
/// charge).
const COST_COMMON: &[&str] = &[
    "cost.driver_call_ns",
    "cost.kernel_launch_ns",
    "cost.transfer_setup_ns",
    "cost.pageable_bw_bytes_per_us",
    "cost.pinned_bw_bytes_per_us",
    "cost.dtod_bw_bytes_per_us",
    "cost.transfer_latency_ns",
    "cost.sync_entry_ns",
    "cost.alloc_base_ns",
    "cost.alloc_per_mib_ns",
    "cost.free_base_ns",
    "cost.memset_bw_bytes_per_us",
    "cost.memset_base_ns",
    "cost.query_call_ns",
    "cost.probe_overhead_ns",
    "cost.stackwalk_frame_ns",
    "cost.jitter_ppm",
];

/// Driver-config fields; every run that executes the app under the
/// simulated driver reads all of them.
const DRIVER_ALL: &[&str] = &[
    "driver.free_implicit_sync",
    "driver.memcpy_implicit_sync",
    "driver.async_dtoh_pageable_sync",
    "driver.memset_unified_sync",
    "driver.unified_memset_penalty",
    "driver.device_memory_bytes",
    "driver.private_api_discount",
];

/// The config fields each stage reads — its declared input set. These
/// lists are the product of auditing the stage implementations
/// (`stages.rs`, `instrument::discovery`, `analysis::analyze`):
///
/// - Discovery builds `Cuda::new(cost)` with the *default* driver config
///   and never runs the app → cost only, no driver, no app digest.
/// - Stages 1–4 all run the app under the configured driver → common
///   cost + all driver fields.
/// - `cost.loadstore_overhead_ns` is charged only where a
///   `LoadStoreWatcher` is installed: the stage 3 memory-tracing run and
///   the stage 4 first-use run.
/// - `cost.hash_bw_bytes_per_us` / `cost.hash_base_ns` are charged only
///   in the stage 3 hashing run (`CostModel::hash_ns` has no other
///   caller in the pipeline).
/// - The merge is a pure union of its two inputs → keyed on dep keys
///   alone.
/// - The analysis reads only the two analysis knobs; everything else it
///   consumes arrives through its dep artifacts.
pub fn declared_fields(id: StageId) -> Vec<&'static str> {
    let mut fields: Vec<&'static str> = Vec::new();
    match id {
        StageId::Discovery => fields.extend(COST_COMMON),
        StageId::Stage1 | StageId::Stage2 => {
            fields.extend(COST_COMMON);
            fields.extend(DRIVER_ALL);
        }
        StageId::Stage3a | StageId::Stage4 => {
            fields.extend(COST_COMMON);
            fields.push("cost.loadstore_overhead_ns");
            fields.extend(DRIVER_ALL);
        }
        StageId::Stage3b => {
            fields.extend(COST_COMMON);
            fields.push("cost.hash_bw_bytes_per_us");
            fields.push("cost.hash_base_ns");
            fields.extend(DRIVER_ALL);
        }
        StageId::Merge3 => {}
        StageId::Stage5 => {
            fields.push("analysis.misplaced_threshold_ns");
            fields.push("analysis.clamp_misplaced");
        }
    }
    fields
}

/// Content-address of one stage's output. See the module docs for the
/// recipe. `cfg.jobs` is deliberately not an input.
pub fn stage_key(
    id: StageId,
    app: &dyn GpuApp,
    cfg: &FfmConfig,
    dep_keys: &[StageKey],
) -> StageKey {
    debug_assert_eq!(dep_keys.len(), deps(id).len());
    let mut h = KeyHasher::new(id.name());
    if id.runs_app() {
        h.push_u64(app.input_digest());
    }
    for field in declared_fields(id) {
        h.push_str(field);
        h.push_u64(get_field(cfg, field).expect("declared fields are sweepable"));
    }
    for &k in dep_keys {
        h.push_key(k);
    }
    h.finish()
}

/// Keys for the whole plan, indexed by [`StageId::index`], without
/// executing anything. Used by the engine at claim time and by the
/// key-audit tests.
pub fn plan_keys(app: &dyn GpuApp, cfg: &FfmConfig) -> [StageKey; STAGE_COUNT] {
    let mut keys = [StageKey(0); STAGE_COUNT];
    for id in StageId::ALL {
        let dep_keys: Vec<StageKey> = deps(id).iter().map(|d| keys[d.index()]).collect();
        keys[id.index()] = stage_key(id, app, cfg, &dep_keys);
    }
    keys
}

/// Everything the engine produces: one artifact per stage, `Arc`-shared
/// with the store so a cache hit costs no deep clone.
pub struct EngineOut {
    pub discovery: Arc<Discovery>,
    pub stage1: Arc<Stage1Result>,
    pub stage2: Arc<Stage2Result>,
    pub stage3: Arc<Stage3Result>,
    pub stage4: Arc<Stage4Result>,
    pub analysis: Arc<Analysis>,
}

fn hit_counter(id: StageId) -> &'static str {
    match id {
        StageId::Discovery => "cache.discovery.hits",
        StageId::Stage1 => "cache.stage1.hits",
        StageId::Stage2 => "cache.stage2.hits",
        StageId::Stage3a => "cache.stage3a.hits",
        StageId::Stage3b => "cache.stage3b.hits",
        StageId::Merge3 => "cache.merge3.hits",
        StageId::Stage4 => "cache.stage4.hits",
        StageId::Stage5 => "cache.stage5.hits",
    }
}

fn miss_counter(id: StageId) -> &'static str {
    match id {
        StageId::Discovery => "cache.discovery.misses",
        StageId::Stage1 => "cache.stage1.misses",
        StageId::Stage2 => "cache.stage2.misses",
        StageId::Stage3a => "cache.stage3a.misses",
        StageId::Stage3b => "cache.stage3b.misses",
        StageId::Merge3 => "cache.merge3.misses",
        StageId::Stage4 => "cache.stage4.misses",
        StageId::Stage5 => "cache.stage5.misses",
    }
}

fn as_stage1(a: &Artifact) -> &Stage1Result {
    match a {
        Artifact::Stage1(s) => s,
        _ => unreachable!("dep order gives stage1 here"),
    }
}

fn as_stage3(a: &Artifact) -> &Stage3Result {
    match a {
        Artifact::Stage3(s) => s,
        _ => unreachable!("dep order gives stage3 here"),
    }
}

/// Per-stage execution-latency histogram, the source of the
/// `diogenes_stage_latency_ns{stage=…}` summaries on `/metrics`.
fn latency_hist(id: StageId) -> &'static str {
    match id {
        StageId::Discovery => "stage.discovery.exec_ns",
        StageId::Stage1 => "stage.stage1.exec_ns",
        StageId::Stage2 => "stage.stage2.exec_ns",
        StageId::Stage3a => "stage.stage3a.exec_ns",
        StageId::Stage3b => "stage.stage3b.exec_ns",
        StageId::Merge3 => "stage.merge3.exec_ns",
        StageId::Stage4 => "stage.stage4.exec_ns",
        StageId::Stage5 => "stage.stage5.exec_ns",
    }
}

/// Execute one stage for real (cache already missed). `dep_artifacts`
/// come in [`deps`] order. Opens the stage's telemetry span, so spans
/// appear exactly when work happens — a cache hit leaves no span.
fn execute(
    id: StageId,
    app: &dyn GpuApp,
    cfg: &FfmConfig,
    jobs: usize,
    dep_artifacts: &[Artifact],
) -> CudaResult<Artifact> {
    let _s = telemetry::span(id.name());
    let t0 = telemetry::collecting().then(std::time::Instant::now);
    let artifact = match id {
        StageId::Discovery => {
            Artifact::Discovery(Arc::new(identify_sync_function(cfg.cost.clone())?))
        }
        StageId::Stage1 => Artifact::Stage1(Arc::new(run_stage1(app, &cfg.cost, &cfg.driver)?)),
        StageId::Stage2 => {
            let s1 = as_stage1(&dep_artifacts[0]);
            Artifact::Stage2(Arc::new(run_stage2(app, &cfg.cost, &cfg.driver, s1)?))
        }
        StageId::Stage3a => {
            let s1 = as_stage1(&dep_artifacts[0]);
            Artifact::Stage3(Arc::new(run_stage3_sync(app, &cfg.cost, &cfg.driver, s1)?))
        }
        StageId::Stage3b => {
            let s1 = as_stage1(&dep_artifacts[0]);
            Artifact::Stage3(Arc::new(run_stage3_hash(app, &cfg.cost, &cfg.driver, s1)?))
        }
        StageId::Merge3 => {
            let sync = as_stage3(&dep_artifacts[0]).clone();
            let hash = as_stage3(&dep_artifacts[1]).clone();
            Artifact::Stage3(Arc::new(merge_stage3(sync, hash)))
        }
        StageId::Stage4 => {
            let s1 = as_stage1(&dep_artifacts[0]);
            let s3a = as_stage3(&dep_artifacts[1]);
            Artifact::Stage4(Arc::new(run_stage4(app, &cfg.cost, &cfg.driver, s1, s3a)?))
        }
        StageId::Stage5 => {
            let s1 = as_stage1(&dep_artifacts[0]);
            let s2 = match &dep_artifacts[1] {
                Artifact::Stage2(s) => s,
                _ => unreachable!("dep order gives stage2 here"),
            };
            let s3 = as_stage3(&dep_artifacts[2]);
            let s4 = match &dep_artifacts[3] {
                Artifact::Stage4(s) => s,
                _ => unreachable!("dep order gives stage4 here"),
            };
            Artifact::Analysis(Arc::new(crate::analysis::analyze(
                s1,
                s2,
                s3,
                s4,
                &cfg.analysis,
                jobs,
            )))
        }
    };
    if let Some(t0) = t0 {
        telemetry::record(latency_hist(id), t0.elapsed().as_nanos() as u64);
    }
    Ok(artifact)
}

/// Consult the store, execute on a miss, record telemetry counters.
///
/// On a miss against a disk-backed store, a best-effort cross-process
/// claim (`store.try_claim`) deduplicates the compute: the winner stakes
/// a `.claim` file and executes; losers wait for the winner's entry to
/// land instead of recomputing. Claims never gate correctness — a waiter
/// whose peer crashes (stale claim) or times out falls through to
/// compute the artifact itself, and `put` keeps its last-write-wins
/// semantics, so the worst case is exactly the old duplicated effort.
fn obtain(
    id: StageId,
    key: StageKey,
    app: &dyn GpuApp,
    cfg: &FfmConfig,
    jobs: usize,
    store: Option<&ArtifactStore>,
    dep_artifacts: &[Artifact],
) -> CudaResult<Artifact> {
    let mut claim = None;
    if let Some(store) = store {
        if let Some(artifact) = store.get(key, id.kind()) {
            telemetry::counter_add(hit_counter(id), 1);
            return Ok(artifact);
        }
        telemetry::counter_add(miss_counter(id), 1);
        match store.try_claim(key, id.kind()) {
            Some(Claim::Acquired(guard)) => claim = Some(guard),
            Some(Claim::Held) => {
                crate::log_debug!("waiting on rival claim stage={} key={}", id.name(), key.hex());
                telemetry::counter_add("cache.claim_waits", 1);
                if let Some(artifact) = store.wait_for_claimed(key, id.kind()) {
                    telemetry::counter_add("cache.claim_wait_hits", 1);
                    return Ok(artifact);
                }
                // The holder died or ran out the TTL without delivering.
                crate::log_debug!(
                    "rival claim expired undelivered stage={} key={}; computing locally",
                    id.name(),
                    key.hex()
                );
            }
            None => {}
        }
    }
    let artifact = execute(id, app, cfg, jobs, dep_artifacts)?;
    if let Some(store) = store {
        store.put(key, artifact.clone());
    }
    drop(claim);
    Ok(artifact)
}

/// Shared scheduler state: one slot per stage.
struct SchedState {
    results: Vec<Option<CudaResult<Artifact>>>,
    claimed: [bool; STAGE_COUNT],
    /// Transitively dead: a dependency failed or was itself skipped.
    skipped: [bool; STAGE_COUNT],
    /// Stages not yet finished (completed, failed, or skipped).
    remaining: usize,
}

impl SchedState {
    /// Propagate failure: any unclaimed stage with a failed or skipped
    /// dependency can never run. Returns whether anything changed.
    fn propagate_skips(&mut self) {
        loop {
            let mut changed = false;
            for id in StageId::ALL {
                let i = id.index();
                if self.claimed[i] || self.skipped[i] {
                    continue;
                }
                let dead = deps(id).iter().any(|d| {
                    let j = d.index();
                    self.skipped[j] || matches!(self.results[j], Some(Err(_)))
                });
                if dead {
                    self.skipped[i] = true;
                    self.remaining -= 1;
                    changed = true;
                }
            }
            if !changed {
                return;
            }
        }
    }

    /// First stage in classic order that is unclaimed, not skipped, and
    /// has all dependencies completed successfully.
    fn next_ready(&self) -> Option<StageId> {
        StageId::ALL.into_iter().find(|&id| {
            let i = id.index();
            !self.claimed[i]
                && !self.skipped[i]
                && deps(id).iter().all(|d| matches!(self.results[d.index()], Some(Ok(_))))
        })
    }
}

/// Execute the DAG and return one artifact slot per stage (`None` for
/// stages excluded from this run). `jobs <= 1` runs inline on the
/// caller's thread in classic order; otherwise up to
/// `min(jobs, MAX_STAGE_WIDTH)` workers drain ready stages from the
/// shared pool. Error semantics match the classic sequential path: when
/// several independent stages fail, the error of the earliest stage in
/// classic order is returned.
///
/// `include_stage5` is the streaming split: the collection-only run
/// ([`run_collection`]) pre-skips the analysis stage, and the streaming
/// driver folds the trace incrementally instead.
fn run_dag(
    app: &dyn GpuApp,
    cfg: &FfmConfig,
    jobs: usize,
    store: Option<&ArtifactStore>,
    include_stage5: bool,
) -> CudaResult<Vec<Option<Artifact>>> {
    let keys = plan_keys(app, cfg);
    let width = jobs.clamp(1, MAX_STAGE_WIDTH);

    let mut skipped = [false; STAGE_COUNT];
    let mut remaining = STAGE_COUNT;
    if !include_stage5 {
        skipped[StageId::Stage5.index()] = true;
        remaining -= 1;
    }
    let state = Mutex::new(SchedState {
        results: (0..STAGE_COUNT).map(|_| None).collect(),
        claimed: [false; STAGE_COUNT],
        skipped,
        remaining,
    });
    let ready_cv = Condvar::new();

    let worker = |_lane: usize| {
        loop {
            let mut st = state.lock().unwrap();
            st.propagate_skips();
            if st.remaining == 0 {
                drop(st);
                ready_cv.notify_all();
                return;
            }
            let Some(id) = st.next_ready() else {
                // Nothing ready, but unfinished stages remain — their
                // dependencies are in flight on other workers (a solo
                // worker never gets here: its own claims complete before
                // it scans again). Wait for a completion.
                let _unused = ready_cv.wait(st).unwrap();
                continue;
            };
            let i = id.index();
            st.claimed[i] = true;
            // Snapshot dep artifacts (Arc clones) while holding the lock.
            let dep_artifacts: Vec<Artifact> = deps(id)
                .iter()
                .map(|d| match &st.results[d.index()] {
                    Some(Ok(a)) => a.clone(),
                    _ => unreachable!("next_ready checked deps"),
                })
                .collect();
            drop(st);

            let result = obtain(id, keys[i], app, cfg, jobs, store, &dep_artifacts);

            let mut st = state.lock().unwrap();
            st.results[i] = Some(result);
            st.remaining -= 1;
            drop(st);
            ready_cv.notify_all();
        }
    };

    if width <= 1 {
        worker(0);
    } else {
        par_map((0..width).collect(), width, worker);
    }

    let mut st = state.into_inner().unwrap();
    // Report the earliest failure in classic order, like the old
    // sequential path did.
    for id in StageId::ALL {
        if let Some(Err(_)) = &st.results[id.index()] {
            match st.results[id.index()].take() {
                Some(Err(e)) => return Err(e),
                _ => unreachable!(),
            }
        }
    }
    Ok(st
        .results
        .into_iter()
        .map(|slot| slot.map(|r| r.expect("failures returned above")))
        .collect())
}

/// Run the whole DAG, analysis included.
pub fn run_stages(
    app: &dyn GpuApp,
    cfg: &FfmConfig,
    jobs: usize,
    store: Option<&ArtifactStore>,
) -> CudaResult<EngineOut> {
    let mut results = run_dag(app, cfg, jobs, store, true)?;
    let mut take =
        |id: StageId| -> Artifact { results[id.index()].take().expect("included stages all ran") };
    let discovery = match take(StageId::Discovery) {
        Artifact::Discovery(d) => d,
        _ => unreachable!(),
    };
    let stage1 = match take(StageId::Stage1) {
        Artifact::Stage1(s) => s,
        _ => unreachable!(),
    };
    let stage2 = match take(StageId::Stage2) {
        Artifact::Stage2(s) => s,
        _ => unreachable!(),
    };
    let stage3 = match take(StageId::Merge3) {
        Artifact::Stage3(s) => s,
        _ => unreachable!(),
    };
    let stage4 = match take(StageId::Stage4) {
        Artifact::Stage4(s) => s,
        _ => unreachable!(),
    };
    let analysis = match take(StageId::Stage5) {
        Artifact::Analysis(a) => a,
        _ => unreachable!(),
    };
    Ok(EngineOut { discovery, stage1, stage2, stage3, stage4, analysis })
}

/// Everything the collection stages produce — the DAG minus stage 5.
/// `stage5_key` is the content address the batch analysis would be (and
/// the final streaming analysis is) stored under, so a streaming run
/// seeds the cache for later batch runs of the same plan.
pub struct CollectOut {
    pub discovery: Arc<Discovery>,
    pub stage1: Arc<Stage1Result>,
    pub stage2: Arc<Stage2Result>,
    pub stage3: Arc<Stage3Result>,
    pub stage4: Arc<Stage4Result>,
    pub stage5_key: StageKey,
}

/// Run the collection stages only (discovery, 1–4 with the stage 3
/// merge), leaving the analysis to the caller — the entry point for the
/// streaming pipeline, which folds the trace window by window instead of
/// analyzing it in one shot.
pub fn run_collection(
    app: &dyn GpuApp,
    cfg: &FfmConfig,
    jobs: usize,
    store: Option<&ArtifactStore>,
) -> CudaResult<CollectOut> {
    let stage5_key = plan_keys(app, cfg)[StageId::Stage5.index()];
    let mut results = run_dag(app, cfg, jobs, store, false)?;
    let mut take = |id: StageId| -> Artifact {
        results[id.index()].take().expect("collection stages all ran")
    };
    let discovery = match take(StageId::Discovery) {
        Artifact::Discovery(d) => d,
        _ => unreachable!(),
    };
    let stage1 = match take(StageId::Stage1) {
        Artifact::Stage1(s) => s,
        _ => unreachable!(),
    };
    let stage2 = match take(StageId::Stage2) {
        Artifact::Stage2(s) => s,
        _ => unreachable!(),
    };
    let stage3 = match take(StageId::Merge3) {
        Artifact::Stage3(s) => s,
        _ => unreachable!(),
    };
    let stage4 = match take(StageId::Stage4) {
        Artifact::Stage4(s) => s,
        _ => unreachable!(),
    };
    Ok(CollectOut { discovery, stage1, stage2, stage3, stage4, stage5_key })
}

/// Content address of one per-window analysis epoch: the stage 5 key
/// (which already folds in the app digest, analysis knobs and every
/// upstream dep key) extended with the window size and epoch ordinal.
/// Distinct windowings address distinct epoch chains; the final analysis
/// itself lives at the plain stage 5 key, since it is byte-identical to
/// the batch artifact regardless of windowing.
pub fn epoch_key(stage5: StageKey, window: usize, epoch: usize) -> StageKey {
    let mut h = KeyHasher::new("stage5-epoch");
    h.push_key(stage5);
    h.push_u64(window as u64);
    h.push_u64(epoch as u64);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{set_field, SWEEPABLE_FIELDS};
    use crate::FfmConfig;
    use cuda_driver::Cuda;
    use std::collections::HashSet;

    struct Tiny;
    impl GpuApp for Tiny {
        fn name(&self) -> &'static str {
            "tiny"
        }
        fn run(&self, _cuda: &mut Cuda) -> CudaResult<()> {
            Ok(())
        }
    }

    struct Tiny2;
    impl GpuApp for Tiny2 {
        fn name(&self) -> &'static str {
            "tiny2"
        }
        fn run(&self, _cuda: &mut Cuda) -> CudaResult<()> {
            Ok(())
        }
    }

    fn changed_stages(field: &str) -> Vec<StageId> {
        let base = FfmConfig::default();
        let mut perturbed = base.clone();
        // Flip the field away from its default; +1 works for integers,
        // and for booleans the XOR keeps the value in {0, 1}.
        let current = get_field(&base, field).unwrap();
        let next = if field.ends_with("_sync")
            || field.ends_with("discount")
            || field.ends_with("clamp_misplaced")
        {
            current ^ 1
        } else {
            current + 1
        };
        set_field(&mut perturbed, field, next).unwrap();
        let a = plan_keys(&Tiny, &base);
        let b = plan_keys(&Tiny, &perturbed);
        StageId::ALL.into_iter().filter(|id| a[id.index()] != b[id.index()]).collect()
    }

    #[test]
    fn every_sweepable_field_rekeys_at_least_one_stage() {
        for field in SWEEPABLE_FIELDS {
            assert!(
                !changed_stages(field).is_empty(),
                "{field} is sweepable but keyed by no stage — a latent cache-incorrectness bug"
            );
        }
    }

    #[test]
    fn hash_cost_fields_rekey_only_the_hashing_chain() {
        // These are the fields the memoization win rests on: perturbing
        // the hash cost must leave discovery/stage1/stage2/stage3a/stage4
        // keys alone so their artifacts are reused.
        for field in ["cost.hash_bw_bytes_per_us", "cost.hash_base_ns"] {
            let changed = changed_stages(field);
            assert_eq!(
                changed,
                vec![StageId::Stage3b, StageId::Merge3, StageId::Stage5],
                "{field}"
            );
        }
    }

    #[test]
    fn loadstore_field_rekeys_only_the_watcher_stages() {
        let changed = changed_stages("cost.loadstore_overhead_ns");
        assert_eq!(
            changed,
            vec![StageId::Stage3a, StageId::Merge3, StageId::Stage4, StageId::Stage5]
        );
    }

    #[test]
    fn analysis_fields_rekey_only_stage5() {
        for field in ["analysis.misplaced_threshold_ns", "analysis.clamp_misplaced"] {
            assert_eq!(changed_stages(field), vec![StageId::Stage5], "{field}");
        }
    }

    #[test]
    fn driver_fields_rekey_everything_except_discovery() {
        // identify_sync_function never sees DriverConfig, so discovery
        // artifacts are shared across driver sweeps.
        for field in DRIVER_ALL {
            let changed = changed_stages(field);
            assert!(!changed.contains(&StageId::Discovery), "{field} must not rekey discovery");
            let expect: Vec<StageId> =
                StageId::ALL.into_iter().filter(|&id| id != StageId::Discovery).collect();
            assert_eq!(changed, expect, "{field}");
        }
    }

    #[test]
    fn common_cost_fields_rekey_every_stage_downstream() {
        let changed = changed_stages("cost.free_base_ns");
        assert_eq!(changed, StageId::ALL.to_vec());
    }

    #[test]
    fn jobs_never_affects_keys() {
        let a = plan_keys(&Tiny, &FfmConfig { jobs: 1, ..FfmConfig::default() });
        let b = plan_keys(&Tiny, &FfmConfig { jobs: 8, ..FfmConfig::default() });
        assert_eq!(a, b);
    }

    #[test]
    fn app_identity_rekeys_app_stages_but_not_discovery() {
        let cfg = FfmConfig::default();
        let a = plan_keys(&Tiny, &cfg);
        let b = plan_keys(&Tiny2, &cfg);
        assert_eq!(
            a[StageId::Discovery.index()],
            b[StageId::Discovery.index()],
            "discovery is app-independent and shared across apps"
        );
        for id in StageId::ALL {
            if id != StageId::Discovery {
                assert_ne!(a[id.index()], b[id.index()], "{} must key on the app", id.name());
            }
        }
    }

    #[test]
    fn all_stage_keys_are_distinct() {
        let keys = plan_keys(&Tiny, &FfmConfig::default());
        let set: HashSet<StageKey> = keys.iter().copied().collect();
        assert_eq!(set.len(), STAGE_COUNT);
    }

    #[test]
    fn second_run_with_a_store_hits_every_stage() {
        let store = ArtifactStore::in_memory();
        let cfg = FfmConfig { jobs: 1, ..FfmConfig::default() };
        run_stages(&Tiny, &cfg, 1, Some(&store)).expect("cold run");
        let cold = store.stats();
        assert_eq!(cold.misses, STAGE_COUNT as u64);
        assert_eq!(cold.puts, STAGE_COUNT as u64);
        run_stages(&Tiny, &cfg, 1, Some(&store)).expect("warm run");
        let warm = store.stats();
        assert_eq!(warm.mem_hits, STAGE_COUNT as u64, "warm run hits every stage");
        assert_eq!(warm.misses, cold.misses, "warm run misses nothing");
    }

    #[test]
    fn engine_matches_storeless_run() {
        let cfg = FfmConfig { jobs: 1, ..FfmConfig::default() };
        let store = ArtifactStore::in_memory();
        let plain = run_stages(&Tiny, &cfg, 1, None).expect("plain");
        let cached = run_stages(&Tiny, &cfg, 1, Some(&store)).expect("cold");
        let warm = run_stages(&Tiny, &cfg, 1, Some(&store)).expect("warm");
        for out in [&cached, &warm] {
            assert_eq!(out.stage1.exec_time_ns, plain.stage1.exec_time_ns);
            assert_eq!(out.stage2.calls.len(), plain.stage2.calls.len());
            assert_eq!(out.analysis.problems.len(), plain.analysis.problems.len());
        }
    }

    #[test]
    fn collection_runs_everything_but_stage5() {
        let store = ArtifactStore::in_memory();
        let cfg = FfmConfig { jobs: 1, ..FfmConfig::default() };
        let col = run_collection(&Tiny, &cfg, 1, Some(&store)).expect("collection");
        let cold = store.stats();
        assert_eq!(cold.misses, (STAGE_COUNT - 1) as u64, "stage5 never consulted");
        assert_eq!(cold.puts, (STAGE_COUNT - 1) as u64);
        assert_eq!(col.stage5_key, plan_keys(&Tiny, &cfg)[StageId::Stage5.index()]);
        // A full run over the same store reuses every collection stage
        // and computes only the analysis.
        let full = run_stages(&Tiny, &cfg, 1, Some(&store)).expect("full");
        let warm = store.stats();
        assert_eq!(warm.mem_hits, (STAGE_COUNT - 1) as u64);
        assert_eq!(warm.misses, cold.misses + 1, "only stage5 missed");
        assert_eq!(full.stage1.exec_time_ns, col.stage1.exec_time_ns);
        assert_eq!(full.stage2.calls.len(), col.stage2.calls.len());
    }

    #[test]
    fn epoch_keys_are_distinct_and_anchored_to_stage5() {
        let cfg = FfmConfig::default();
        let s5 = plan_keys(&Tiny, &cfg)[StageId::Stage5.index()];
        let mut seen = HashSet::new();
        seen.insert(s5);
        for window in [64usize, 256] {
            for epoch in 0..4 {
                assert!(seen.insert(epoch_key(s5, window, epoch)), "w={window} e={epoch}");
            }
        }
        let other = plan_keys(&Tiny2, &cfg)[StageId::Stage5.index()];
        assert_ne!(epoch_key(s5, 64, 0), epoch_key(other, 64, 0));
    }

    #[test]
    fn foreign_claims_cannot_wedge_the_pipeline() {
        // A crashed shard process left claim files on every stage key
        // (fresh mtimes, so a TTL-honoring store would wait on each).
        // With a zero TTL the engine breaks every claim, computes, and
        // produces the same output as an uncontended run.
        let dir =
            std::env::temp_dir().join(format!("diogenes-engine-claim-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = FfmConfig { jobs: 1, ..FfmConfig::default() };
        for (id, key) in StageId::ALL.iter().zip(plan_keys(&Tiny, &cfg)) {
            let rival = ArtifactStore::with_disk(&dir);
            match rival.try_claim(key, id.kind()) {
                Some(Claim::Acquired(g)) => std::mem::forget(g),
                other => panic!("rival claim on {id:?} not acquired: held={}", other.is_some()),
            }
        }
        let store = ArtifactStore::with_disk(&dir).with_claim_ttl(std::time::Duration::ZERO);
        let plain = run_stages(&Tiny, &cfg, 1, None).expect("plain");
        let out = run_stages(&Tiny, &cfg, 1, Some(&store)).expect("claimed run");
        assert_eq!(out.stage1.exec_time_ns, plain.stage1.exec_time_ns);
        assert_eq!(out.analysis.problems.len(), plain.analysis.problems.len());
        assert_eq!(store.stats().puts, STAGE_COUNT as u64, "every stage computed locally");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
