//! Self-measurement: the tool watching itself the way it watches apps.
//!
//! The paper's premise is *honest* measurement — Diogenes reports its own
//! collection overhead (§6, Fig. 8) so users can trust the benefit
//! estimates. [`crate::pipeline::StageStats::overhead_factor`] reproduces
//! that at stage granularity, but nothing below the stage level was
//! visible once `run_ffm` became a concurrent stage DAG on a shared
//! worker pool. This module is the layer that explains where *pipeline*
//! time goes: hierarchical spans, a metrics registry of counters and
//! value histograms, and exporters that render the tool's own execution
//! as a Chrome trace (one track per `ffm-pool-N` worker) plus a summary
//! document (`results/TELEMETRY_<app>.json`, written by `--profile`).
//!
//! ## Jobs-invariance by construction
//!
//! Telemetry must never be able to change a report. Three properties
//! guarantee it:
//!
//! 1. **No data flows back.** Spans and metrics are write-only from the
//!    pipeline's perspective; nothing in `run_ffm`/`run_sweep` reads the
//!    sink. Reports are bit-identical with profiling on or off, at every
//!    `--jobs` value (pinned by `crates/diogenes/tests`).
//! 2. **No-op fast path.** When disabled (the default), every entry
//!    point is one relaxed atomic load and an early return — no
//!    allocation, no locks, no clock reads — so the hot paths in
//!    `par.rs` / `pipeline.rs` cost nothing on tier-1 runs.
//! 3. **Lock-sharded, thread-local-buffered sink.** Each thread owns a
//!    private shard (registered once, uncontended mutex) and buffers
//!    span events in a plain `Vec` that is flushed when the outermost
//!    span closes, so recording never serializes worker threads against
//!    each other.
//!
//! Wall-clock timestamps make telemetry output inherently
//! non-deterministic — which is exactly why it lives in separate
//! artifacts and never inside `FfmReport` / `SweepMatrix` JSON.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Synthetic pid for the tool-self trace (the simulated app's traceviz
/// export also uses pid 1; the two documents are separate files, so the
/// ids never collide in one viewer session).
pub const SELF_TRACE_PID: u32 = 1;

/// Flush the thread-local event buffer into the shard at this size even
/// if a span is still open (bounds buffer growth under deep fan-out).
const FLUSH_AT: usize = 128;

// ---------------------------------------------------------------------------
// Enable flag — the no-op fast path.
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether telemetry collection is active. One relaxed load; every other
/// entry point checks this first, so a disabled process pays nothing.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn collection on or off process-wide (the CLI's `--profile` flag).
/// Spans opened while enabled still record on drop after a disable.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// The sink: per-thread shards registered in a global list.
// ---------------------------------------------------------------------------

/// One recorded span: a named interval on one thread's track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Static span name (`"stage2-detailed-tracing"`, `"sweep.cell"`, …).
    pub name: &'static str,
    /// Optional per-instance label, built only while enabled.
    pub detail: Option<String>,
    /// Nanoseconds since the process telemetry epoch.
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Nesting depth at entry (0 = top level on this thread).
    pub depth: u32,
}

impl SpanEvent {
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// A value histogram with power-of-two buckets plus exact count / sum /
/// min / max. Merging two histograms is bucket-wise addition, so the
/// result is independent of worker count and merge order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// `buckets[i]` counts values in `[2^(i-1), 2^i)`; bucket 0 holds 0.
    pub buckets: [u64; 64],
}

impl Default for Hist {
    fn default() -> Self {
        Hist { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: [0; 64] }
    }
}

impl Hist {
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros() as usize).min(63)
    }

    pub fn record(&mut self, v: u64) {
        self.count += 1;
        // Saturating: commutative and associative over unsigned values,
        // so shard merge order still cannot change the result.
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Bucket-wise merge: commutative and associative, so shard order
    /// cannot influence the result.
    pub fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One thread's shard of the sink. Only the owning thread writes; the
/// drainer locks briefly to take the accumulated data, so the mutexes
/// are uncontended in steady state.
struct ThreadShard {
    thread: String,
    track: u32,
    events: Mutex<Vec<SpanEvent>>,
    counters: Mutex<HashMap<&'static str, u64>>,
    hists: Mutex<HashMap<&'static str, Hist>>,
}

struct Registry {
    epoch: Instant,
    shards: Mutex<Vec<Arc<ThreadShard>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry { epoch: Instant::now(), shards: Mutex::new(Vec::new()) })
}

fn now_ns() -> u64 {
    registry().epoch.elapsed().as_nanos() as u64
}

/// Thread-local half: the shard handle plus the span buffer and depth.
struct Local {
    shard: Arc<ThreadShard>,
    buf: Vec<SpanEvent>,
    depth: u32,
}

impl Local {
    fn register() -> Local {
        let reg = registry();
        let mut shards = reg.shards.lock().unwrap();
        let track = shards.len() as u32;
        let thread = std::thread::current()
            .name()
            .map(|n| n.to_string())
            .unwrap_or_else(|| format!("thread-{track}"));
        let shard = Arc::new(ThreadShard {
            thread,
            track,
            events: Mutex::new(Vec::new()),
            counters: Mutex::new(HashMap::new()),
            hists: Mutex::new(HashMap::new()),
        });
        shards.push(Arc::clone(&shard));
        Local { shard, buf: Vec::new(), depth: 0 }
    }

    fn flush(&mut self) {
        if !self.buf.is_empty() {
            self.shard.events.lock().unwrap().append(&mut self.buf);
        }
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<Option<Local>> = const { RefCell::new(None) };
}

fn with_local<R>(f: impl FnOnce(&mut Local) -> R) -> Option<R> {
    LOCAL
        .try_with(|cell| {
            let mut opt = cell.borrow_mut();
            f(opt.get_or_insert_with(Local::register))
        })
        .ok()
}

// ---------------------------------------------------------------------------
// Spans.
// ---------------------------------------------------------------------------

/// An open span; records a [`SpanEvent`] on drop. A disabled process gets
/// an inert guard (no allocation, no clock read).
#[must_use = "a span records on drop; binding it to `_` closes it immediately"]
pub struct Span {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: &'static str,
    detail: Option<String>,
    start_ns: u64,
}

/// Open a span named `name` on the current thread's track.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { active: None };
    }
    open_span(name, None)
}

/// Open a span with a per-instance label; `detail` is only invoked while
/// telemetry is enabled, so label formatting is free on the no-op path.
#[inline]
pub fn span_detail(name: &'static str, detail: impl FnOnce() -> String) -> Span {
    if !enabled() {
        return Span { active: None };
    }
    open_span(name, Some(detail()))
}

fn open_span(name: &'static str, detail: Option<String>) -> Span {
    with_local(|l| l.depth += 1);
    Span { active: Some(ActiveSpan { name, detail, start_ns: now_ns() }) }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        let end = now_ns();
        with_local(move |l| {
            l.depth = l.depth.saturating_sub(1);
            l.buf.push(SpanEvent {
                name: a.name,
                detail: a.detail,
                start_ns: a.start_ns,
                dur_ns: end.saturating_sub(a.start_ns),
                depth: l.depth,
            });
            // Flushing at depth 0 keeps parked pool workers' shards
            // complete: a worker is only ever idle between tasks, i.e.
            // with no span open.
            if l.depth == 0 || l.buf.len() >= FLUSH_AT {
                l.flush();
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Metrics registry.
// ---------------------------------------------------------------------------

/// Add `n` to the named counter on this thread's shard. Counters from
/// all shards are summed at [`drain`] time (addition commutes, so the
/// merged value is worker-count independent).
#[inline]
pub fn counter_add(name: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    with_local(|l| *l.shard.counters.lock().unwrap().entry(name).or_insert(0) += n);
}

/// Record a value into the named histogram on this thread's shard.
/// Values are durations in nanoseconds for `*_ns` metrics and plain
/// magnitudes otherwise (queue depth, batch size).
#[inline]
pub fn record(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    with_local(|l| l.shard.hists.lock().unwrap().entry(name).or_default().record(value));
}

// ---------------------------------------------------------------------------
// Drain + snapshot.
// ---------------------------------------------------------------------------

/// One thread's drained events.
#[derive(Debug, Clone)]
pub struct TrackSnapshot {
    pub thread: String,
    pub track: u32,
    pub events: Vec<SpanEvent>,
}

impl TrackSnapshot {
    /// Time covered by top-level spans on this track — the "busy" time
    /// the worker-utilization summary reports.
    pub fn busy_ns(&self) -> u64 {
        self.events.iter().filter(|e| e.depth == 0).map(|e| e.dur_ns).sum()
    }
}

/// Everything collected since the last drain, with per-thread shards
/// merged into order-independent totals.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Per-thread span tracks, in registration order.
    pub tracks: Vec<TrackSnapshot>,
    /// Counters summed across shards.
    pub counters: BTreeMap<&'static str, u64>,
    /// Histograms merged bucket-wise across shards.
    pub hists: BTreeMap<&'static str, Hist>,
}

/// Aggregate of all spans sharing a name, across tracks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanAggregate {
    pub name: &'static str,
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
}

impl TelemetrySnapshot {
    /// Per-name span rollup, sorted by name for deterministic output.
    pub fn span_aggregates(&self) -> Vec<SpanAggregate> {
        let mut by_name: BTreeMap<&'static str, SpanAggregate> = BTreeMap::new();
        for t in &self.tracks {
            for e in &t.events {
                let agg = by_name.entry(e.name).or_insert(SpanAggregate {
                    name: e.name,
                    count: 0,
                    total_ns: 0,
                    min_ns: u64::MAX,
                    max_ns: 0,
                });
                agg.count += 1;
                agg.total_ns += e.dur_ns;
                agg.min_ns = agg.min_ns.min(e.dur_ns);
                agg.max_ns = agg.max_ns.max(e.dur_ns);
            }
        }
        by_name.into_values().collect()
    }
}

/// Take everything recorded so far and reset the sink. Shards stay
/// registered (their threads keep writing into the next snapshot); the
/// caller's local buffer is flushed first so its own spans are included.
pub fn drain() -> TelemetrySnapshot {
    with_local(|l| l.flush());
    let shards: Vec<Arc<ThreadShard>> = registry().shards.lock().unwrap().clone();
    let mut snap = TelemetrySnapshot::default();
    for shard in shards {
        let events = std::mem::take(&mut *shard.events.lock().unwrap());
        if !events.is_empty() {
            snap.tracks.push(TrackSnapshot {
                thread: shard.thread.clone(),
                track: shard.track,
                events,
            });
        }
        for (name, v) in std::mem::take(&mut *shard.counters.lock().unwrap()) {
            *snap.counters.entry(name).or_insert(0) += v;
        }
        for (name, h) in std::mem::take(&mut *shard.hists.lock().unwrap()) {
            snap.hists.entry(name).or_default().merge(&h);
        }
    }
    snap.tracks.sort_by_key(|t| t.track);
    snap
}

// ---------------------------------------------------------------------------
// Well-formedness (used by the telemetry test suite).
// ---------------------------------------------------------------------------

/// Check that one track's spans form a proper hierarchy: every exit
/// matches an enter (guaranteed structurally by the RAII guard, verified
/// here from the recorded data), spans never partially overlap, and the
/// recorded depth matches the nesting implied by the intervals.
pub fn spans_well_formed(events: &[SpanEvent]) -> Result<(), String> {
    let mut order: Vec<&SpanEvent> = events.iter().collect();
    order.sort_by_key(|e| (e.start_ns, std::cmp::Reverse(e.end_ns()), e.depth));
    let mut stack: Vec<u64> = Vec::new();
    for e in &order {
        while let Some(&top_end) = stack.last() {
            if top_end <= e.start_ns {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&top_end) = stack.last() {
            if e.end_ns() > top_end {
                return Err(format!(
                    "span {:?} [{}, {}) partially overlaps its enclosing span ending at {}",
                    e.name,
                    e.start_ns,
                    e.end_ns(),
                    top_end
                ));
            }
        }
        if e.depth as usize != stack.len() {
            return Err(format!(
                "span {:?} recorded depth {} but interval nesting implies {}",
                e.name,
                e.depth,
                stack.len()
            ));
        }
        stack.push(e.end_ns());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Chrome trace-event encoding (shared with `diogenes::traceviz`).
// ---------------------------------------------------------------------------

use crate::json::Json;

/// One complete (`ph:"X"`) trace event in Chrome trace-event JSON.
/// `chrome://tracing`, Perfetto and Speedscope all read this shape; the
/// simulated-app exporter and the tool-self exporter share it so the
/// same viewers open both.
pub fn chrome_duration_event(
    name: String,
    cat: &str,
    pid: u32,
    tid: u32,
    ts_us: f64,
    dur_us: f64,
) -> Json {
    Json::obj([
        ("name", name.into()),
        ("cat", cat.into()),
        ("ph", "X".into()),
        ("pid", Json::Int(pid as i128)),
        ("tid", Json::Int(tid as i128)),
        ("ts", Json::Float(ts_us)),
        ("dur", Json::Float(dur_us)),
    ])
}

/// A metadata (`ph:"M"`) event labeling a process or thread track, so
/// viewers show `ffm-pool-2` instead of a raw tid integer. `what` is
/// `"process_name"` or `"thread_name"`.
pub fn chrome_metadata_event(what: &str, pid: u32, tid: u32, label: &str) -> Json {
    Json::obj([
        ("name", what.into()),
        ("ph", "M".into()),
        ("pid", Json::Int(pid as i128)),
        ("tid", Json::Int(tid as i128)),
        ("args", Json::obj([("name", label.into())])),
    ])
}

/// The tool's own execution as Chrome trace events: one track per
/// recorded thread (`main`, `ffm-pool-N`, …), labeled with metadata
/// events.
pub fn self_trace_events(snap: &TelemetrySnapshot) -> Vec<Json> {
    let mut events =
        vec![chrome_metadata_event("process_name", SELF_TRACE_PID, 0, "diogenes-self")];
    for t in &snap.tracks {
        events.push(chrome_metadata_event("thread_name", SELF_TRACE_PID, t.track, &t.thread));
        for e in &t.events {
            let name = match &e.detail {
                Some(d) => format!("{} [{}]", e.name, d),
                None => e.name.to_string(),
            };
            events.push(chrome_duration_event(
                name,
                "tool",
                SELF_TRACE_PID,
                t.track,
                e.start_ns as f64 / 1_000.0,
                (e.dur_ns.max(1)) as f64 / 1_000.0,
            ));
        }
    }
    events
}

/// Render a snapshot as the `results/TELEMETRY_<app>.json` document:
/// span rollups, merged metrics, per-worker utilization, and the full
/// tool-self Chrome trace under the standard `traceEvents` key (so the
/// artifact itself opens in Perfetto).
pub fn snapshot_to_json(app: &str, workload: &str, jobs: usize, snap: &TelemetrySnapshot) -> Json {
    let spans = snap
        .span_aggregates()
        .into_iter()
        .map(|a| {
            Json::obj([
                ("name", a.name.into()),
                ("count", Json::Int(a.count as i128)),
                ("total_ns", Json::Int(a.total_ns as i128)),
                ("min_ns", Json::Int(a.min_ns as i128)),
                ("max_ns", Json::Int(a.max_ns as i128)),
            ])
        })
        .collect();
    let counters =
        snap.counters.iter().map(|(k, v)| (k.to_string(), Json::Int(*v as i128))).collect();
    let hists = snap
        .hists
        .iter()
        .map(|(k, h)| {
            let buckets: Vec<Json> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| {
                    let lo = if i == 0 { 0u64 } else { 1u64 << (i - 1) };
                    Json::arr([Json::Int(lo as i128), Json::Int(c as i128)])
                })
                .collect();
            (
                k.to_string(),
                Json::obj([
                    ("count", Json::Int(h.count as i128)),
                    ("sum", Json::Int(h.sum as i128)),
                    ("min", Json::Int(if h.count == 0 { 0 } else { h.min as i128 })),
                    ("max", Json::Int(h.max as i128)),
                    ("mean", Json::Float(h.mean())),
                    ("buckets", Json::Arr(buckets)),
                ]),
            )
        })
        .collect();
    let workers = snap
        .tracks
        .iter()
        .map(|t| {
            Json::obj([
                ("thread", Json::Str(t.thread.clone())),
                ("spans", Json::Int(t.events.len() as i128)),
                ("busy_ns", Json::Int(t.busy_ns() as i128)),
            ])
        })
        .collect();
    Json::obj([
        ("telemetry", "diogenes-self".into()),
        ("app", app.into()),
        ("workload", workload.into()),
        ("jobs", Json::Int(jobs as i128)),
        ("spans", Json::Arr(spans)),
        ("counters", Json::Obj(counters)),
        ("histograms", Json::Obj(hists)),
        ("workers", Json::Arr(workers)),
        ("traceEvents", Json::Arr(self_trace_events(snap))),
        ("displayTimeUnit", "ns".into()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Telemetry tests share one process-global sink, so they serialize
    /// on this lock and assert "contains", never "equals" (other test
    /// modules may run concurrently while the flag is on).
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_paths_record_nothing_and_allocate_nothing() {
        let _g = test_lock();
        set_enabled(false);
        let s = span("never");
        assert!(s.active.is_none(), "disabled span must be inert");
        drop(s);
        counter_add("never.counter", 7);
        record("never.hist", 7);
        let snap = drain();
        assert!(!snap.counters.contains_key("never.counter"));
        assert!(!snap.hists.contains_key("never.hist"));
        assert!(snap.tracks.iter().all(|t| t.events.iter().all(|e| e.name != "never")));
    }

    #[test]
    fn spans_counters_and_hists_round_trip() {
        let _g = test_lock();
        set_enabled(true);
        {
            let _outer = span_detail("tele.outer", || "label".to_string());
            let _inner = span("tele.inner");
            counter_add("tele.count", 2);
            counter_add("tele.count", 3);
            record("tele.hist", 10);
            record("tele.hist", 1000);
        }
        set_enabled(false);
        let snap = drain();
        assert_eq!(snap.counters["tele.count"], 5);
        let h = &snap.hists["tele.hist"];
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 1010, 10, 1000));
        let me: Vec<&SpanEvent> = snap
            .tracks
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| e.name.starts_with("tele."))
            .collect();
        assert_eq!(me.len(), 2);
        let outer = me.iter().find(|e| e.name == "tele.outer").unwrap();
        let inner = me.iter().find(|e| e.name == "tele.inner").unwrap();
        assert_eq!(outer.detail.as_deref(), Some("label"));
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns() <= outer.end_ns());
        let aggs = snap.span_aggregates();
        let oa = aggs.iter().find(|a| a.name == "tele.outer").unwrap();
        assert_eq!((oa.count, oa.total_ns), (1, outer.dur_ns));
    }

    #[test]
    fn worker_threads_get_their_own_tracks() {
        let _g = test_lock();
        set_enabled(true);
        std::thread::Builder::new()
            .name("tele-worker".to_string())
            .spawn(|| {
                let _s = span("tele.on_worker");
            })
            .unwrap()
            .join()
            .unwrap();
        set_enabled(false);
        let snap = drain();
        let track = snap
            .tracks
            .iter()
            .find(|t| t.events.iter().any(|e| e.name == "tele.on_worker"))
            .expect("worker span recorded");
        assert_eq!(track.thread, "tele-worker");
        spans_well_formed(&track.events).unwrap();
    }

    #[test]
    fn hist_merge_is_order_independent() {
        let values_a = [0u64, 1, 5, 1023, 1024, u64::MAX];
        let values_b = [3u64, 3, 3, 1 << 40];
        let mut a = Hist::default();
        let mut b = Hist::default();
        for v in values_a {
            a.record(v);
        }
        for v in values_b {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must commute");
        // And both equal recording everything into one histogram.
        let mut one = Hist::default();
        for v in values_a.iter().chain(values_b.iter()) {
            one.record(*v);
        }
        assert_eq!(ab, one, "merge must equal single-shard recording");
    }

    #[test]
    fn hist_buckets_are_power_of_two_ranges() {
        let mut h = Hist::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        assert_eq!(h.buckets[0], 1, "zero bucket");
        assert_eq!(h.buckets[1], 1, "[1,2)");
        assert_eq!(h.buckets[2], 2, "[2,4)");
        assert_eq!(h.buckets[3], 1, "[4,8)");
    }

    #[test]
    fn nesting_validator_accepts_proper_hierarchies() {
        let ev = |name, start, dur, depth| SpanEvent {
            name,
            detail: None,
            start_ns: start,
            dur_ns: dur,
            depth,
        };
        // [a [b] [c]] [d]
        let good =
            vec![ev("a", 0, 100, 0), ev("b", 10, 20, 1), ev("c", 40, 30, 1), ev("d", 120, 10, 0)];
        spans_well_formed(&good).unwrap();
        assert!(spans_well_formed(&[]).is_ok());
    }

    #[test]
    fn nesting_validator_rejects_partial_overlap_and_bad_depth() {
        let ev = |name, start, dur, depth| SpanEvent {
            name,
            detail: None,
            start_ns: start,
            dur_ns: dur,
            depth,
        };
        let overlap = vec![ev("a", 0, 50, 0), ev("b", 25, 50, 1)];
        assert!(spans_well_formed(&overlap).is_err(), "partial overlap must be rejected");
        let bad_depth = vec![ev("a", 0, 100, 0), ev("b", 10, 20, 2)];
        assert!(spans_well_formed(&bad_depth).is_err(), "depth mismatch must be rejected");
    }

    #[test]
    fn chrome_events_have_viewer_required_fields() {
        let x = chrome_duration_event("work".to_string(), "tool", 1, 3, 1.5, 2.0);
        let s = x.to_string_compact();
        assert!(s.contains("\"ph\":\"X\""), "{s}");
        assert!(s.contains("\"tid\":3"), "{s}");
        let m = chrome_metadata_event("thread_name", 1, 3, "ffm-pool-3");
        let s = m.to_string_compact();
        assert!(s.contains("\"ph\":\"M\""), "{s}");
        assert!(s.contains("\"args\":{\"name\":\"ffm-pool-3\"}"), "{s}");
    }

    #[test]
    fn snapshot_json_contains_all_sections() {
        let snap = TelemetrySnapshot {
            tracks: vec![TrackSnapshot {
                thread: "main".to_string(),
                track: 0,
                events: vec![SpanEvent {
                    name: "run_ffm",
                    detail: Some("als".to_string()),
                    start_ns: 5,
                    dur_ns: 100,
                    depth: 0,
                }],
            }],
            counters: [("graph.nodes", 42u64)].into_iter().collect(),
            hists: {
                let mut h = Hist::default();
                h.record(7);
                [("pool.batch_size", h)].into_iter().collect()
            },
        };
        let doc = snapshot_to_json("als", "w", 4, &snap).to_string_pretty();
        for key in [
            "\"app\"",
            "\"spans\"",
            "\"counters\"",
            "\"histograms\"",
            "\"workers\"",
            "\"traceEvents\"",
            "run_ffm",
            "graph.nodes",
            "pool.batch_size",
            "\"ph\": \"M\"",
        ] {
            assert!(doc.contains(key), "missing {key} in:\n{doc}");
        }
    }
}
