//! Self-measurement: the tool watching itself the way it watches apps.
//!
//! The paper's premise is *honest* measurement — Diogenes reports its own
//! collection overhead (§6, Fig. 8) so users can trust the benefit
//! estimates. [`crate::pipeline::StageStats::overhead_factor`] reproduces
//! that at stage granularity, but nothing below the stage level was
//! visible once `run_ffm` became a concurrent stage DAG on a shared
//! worker pool. This module is the layer that explains where *pipeline*
//! time goes: hierarchical spans, a metrics registry of counters and
//! value histograms, and exporters that render the tool's own execution
//! as a Chrome trace (one track per `ffm-pool-N` worker) plus a summary
//! document (`results/TELEMETRY_<app>.json`, written by `--profile`).
//!
//! ## Jobs-invariance by construction
//!
//! Telemetry must never be able to change a report. Three properties
//! guarantee it:
//!
//! 1. **No data flows back.** Spans and metrics are write-only from the
//!    pipeline's perspective; nothing in `run_ffm`/`run_sweep` reads the
//!    sink. Reports are bit-identical with profiling on or off, at every
//!    `--jobs` value (pinned by `crates/diogenes/tests`).
//! 2. **No-op fast path.** When disabled (the default), every entry
//!    point is one relaxed atomic load and an early return — no
//!    allocation, no locks, no clock reads — so the hot paths in
//!    `par.rs` / `pipeline.rs` cost nothing on tier-1 runs.
//! 3. **Lock-sharded, thread-local-buffered sink.** Each thread owns a
//!    private shard (registered once, uncontended mutex) and buffers
//!    span events in a plain `Vec` that is flushed when the outermost
//!    span closes, so recording never serializes worker threads against
//!    each other.
//!
//! Wall-clock timestamps make telemetry output inherently
//! non-deterministic — which is exactly why it lives in separate
//! artifacts and never inside `FfmReport` / `SweepMatrix` JSON.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Synthetic pid for the tool-self trace (the simulated app's traceviz
/// export also uses pid 1; the two documents are separate files, so the
/// ids never collide in one viewer session).
pub const SELF_TRACE_PID: u32 = 1;

/// Flush the thread-local event buffer into the shard at this size even
/// if a span is still open (bounds buffer growth under deep fan-out).
const FLUSH_AT: usize = 128;

// ---------------------------------------------------------------------------
// Enable flag — the no-op fast path.
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether telemetry collection is active. One relaxed load; every other
/// entry point checks this first, so a disabled process pays nothing.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn collection on or off process-wide (the CLI's `--profile` flag).
/// Spans opened while enabled still record on drop after a disable.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Flight recorder flag + trace correlation — the always-on layer.
// ---------------------------------------------------------------------------

/// Total byte budget of the flight-recorder ring; `0` = off (the
/// default, so one-shot CLI runs pay nothing).
static FLIGHT_BYTES: AtomicUsize = AtomicUsize::new(0);

/// Whether the flight recorder is retaining recent spans.
#[inline]
pub fn flight_enabled() -> bool {
    FLIGHT_BYTES.load(Ordering::Relaxed) != 0
}

/// Whether *any* sink wants span data: the drainable profiling sink
/// (`--profile`) or the always-on flight recorder. One or two relaxed
/// loads — this is the no-op fast path of every entry point.
#[inline]
pub fn collecting() -> bool {
    enabled() || flight_enabled()
}

/// Set the flight recorder's total byte budget (`diogenes serve
/// --flight-recorder-bytes`). `0` disables it. The budget bounds resident
/// memory: once full, the oldest spans are overwritten.
pub fn flight_configure(total_bytes: usize) {
    FLIGHT_BYTES.store(total_bytes, Ordering::Relaxed);
}

/// A request-correlation id minted at an entry point (one per HTTP
/// request or job in `diogenes serve`) and carried via a thread-local so
/// every span recorded and every log line emitted while it is installed
/// can be attributed to the request. `0` is reserved for "untraced".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

thread_local! {
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
}

/// The trace id installed on the current thread, if any. Safe to call
/// from anywhere (including thread teardown): absent a scope it is
/// `None`.
#[inline]
pub fn current_trace() -> Option<TraceId> {
    let raw = CURRENT_TRACE.try_with(Cell::get).unwrap_or(0);
    if raw == 0 {
        None
    } else {
        Some(TraceId(raw))
    }
}

/// RAII guard restoring the previously installed trace id on drop.
#[must_use = "the trace id is uninstalled when the scope drops"]
pub struct TraceScope {
    prev: u64,
}

/// Install `trace` (or clear it, for `None`) as the current thread's
/// trace id until the returned scope drops. Scopes nest; the previous id
/// is restored on drop. Two thread-local cell accesses — cheap enough
/// for per-task use.
pub fn trace_scope(trace: Option<TraceId>) -> TraceScope {
    let next = trace.map_or(0, |t| t.0);
    let prev = CURRENT_TRACE.try_with(|c| c.replace(next)).unwrap_or(0);
    TraceScope { prev }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        let _ = CURRENT_TRACE.try_with(|c| c.set(self.prev));
    }
}

// ---------------------------------------------------------------------------
// The sink: per-thread shards registered in a global list.
// ---------------------------------------------------------------------------

/// One recorded span: a named interval on one thread's track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Static span name (`"stage2-detailed-tracing"`, `"sweep.cell"`, …).
    pub name: &'static str,
    /// Optional per-instance label, built only while enabled.
    pub detail: Option<String>,
    /// Nanoseconds since the process telemetry epoch.
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Nesting depth at entry (0 = top level on this thread).
    pub depth: u32,
    /// Request-correlation id installed when the span closed
    /// ([`trace_scope`]); `0` = untraced.
    pub trace: u64,
}

impl SpanEvent {
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }

    /// Display label: the static name, plus the per-instance detail in
    /// brackets when present (`"serve.job [4f0e...]"`). Trace exports
    /// and well-formedness diagnostics both use this form.
    pub fn label(&self) -> String {
        match &self.detail {
            Some(d) => format!("{} [{}]", self.name, d),
            None => self.name.to_string(),
        }
    }
}

/// A value histogram with power-of-two buckets plus exact count / sum /
/// min / max. Merging two histograms is bucket-wise addition, so the
/// result is independent of worker count and merge order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// `buckets[i]` counts values in `[2^(i-1), 2^i)`; bucket 0 holds 0.
    pub buckets: [u64; 64],
}

impl Default for Hist {
    fn default() -> Self {
        Hist { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: [0; 64] }
    }
}

impl Hist {
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros() as usize).min(63)
    }

    pub fn record(&mut self, v: u64) {
        self.count += 1;
        // Saturating: commutative and associative over unsigned values,
        // so shard merge order still cannot change the result.
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Bucket-wise merge: commutative and associative, so shard order
    /// cannot influence the result.
    pub fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Inclusive upper bound of bucket `i` (the largest value it holds).
    fn bucket_hi(i: usize) -> u64 {
        match i {
            0 => 0,
            63 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Lower bound of bucket `i`.
    fn bucket_lo(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`) from the log2 buckets.
    ///
    /// The rank-holding bucket is found by a cumulative walk, then the
    /// value is linearly interpolated inside the bucket's `[lo, hi]`
    /// range and clamped to the exact observed `[min, max]`. Guarantees
    /// (pinned by property tests): the estimate always lies in
    /// `[min, max]`, and it is monotone non-decreasing in `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                let lo = Self::bucket_lo(i);
                let hi = Self::bucket_hi(i);
                let frac = (rank - cum) as f64 / c as f64;
                let est = lo as f64 + (hi - lo) as f64 * frac;
                return (est as u64).clamp(self.min, self.max);
            }
            cum += c;
        }
        self.max
    }
}

/// One thread's shard of the sink. Only the owning thread writes; the
/// drainer locks briefly to take the accumulated data, so the mutexes
/// are uncontended in steady state.
struct ThreadShard {
    /// Owning thread's name. Mutable because shards of dead threads are
    /// recycled (see [`Registry::free`]) and renamed by their new owner.
    thread: Mutex<String>,
    track: u32,
    events: Mutex<Vec<SpanEvent>>,
    counters: Mutex<HashMap<&'static str, u64>>,
    hists: Mutex<HashMap<&'static str, Hist>>,
}

struct Registry {
    epoch: Instant,
    shards: Mutex<Vec<Arc<ThreadShard>>>,
    /// Shards whose owning thread exited, available for reuse. Without
    /// recycling, a thread-per-connection daemon with the flight
    /// recorder on would register one shard per connection and grow the
    /// registry without bound; with it, the shard count is bounded by
    /// the maximum number of concurrently live recording threads.
    free: Mutex<Vec<Arc<ThreadShard>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        epoch: Instant::now(),
        shards: Mutex::new(Vec::new()),
        free: Mutex::new(Vec::new()),
    })
}

fn now_ns() -> u64 {
    registry().epoch.elapsed().as_nanos() as u64
}

/// Thread-local half: the shard handle plus the span buffer and depth.
struct Local {
    shard: Arc<ThreadShard>,
    buf: Vec<SpanEvent>,
    depth: u32,
}

impl Local {
    fn register() -> Local {
        let reg = registry();
        if let Some(shard) = reg.free.lock().unwrap().pop() {
            // Recycle a dead thread's shard: same track id, new name.
            let name = std::thread::current()
                .name()
                .map(|n| n.to_string())
                .unwrap_or_else(|| format!("thread-{}", shard.track));
            *shard.thread.lock().unwrap() = name;
            return Local { shard, buf: Vec::new(), depth: 0 };
        }
        let mut shards = reg.shards.lock().unwrap();
        let track = shards.len() as u32;
        let thread = std::thread::current()
            .name()
            .map(|n| n.to_string())
            .unwrap_or_else(|| format!("thread-{track}"));
        let shard = Arc::new(ThreadShard {
            thread: Mutex::new(thread),
            track,
            events: Mutex::new(Vec::new()),
            counters: Mutex::new(HashMap::new()),
            hists: Mutex::new(HashMap::new()),
        });
        shards.push(Arc::clone(&shard));
        Local { shard, buf: Vec::new(), depth: 0 }
    }

    fn flush(&mut self) {
        if !self.buf.is_empty() {
            self.shard.events.lock().unwrap().append(&mut self.buf);
        }
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        self.flush();
        // Return the shard for reuse by the next registering thread. Any
        // not-yet-drained data stays on the shard and is attributed to
        // its track as usual.
        registry().free.lock().unwrap().push(Arc::clone(&self.shard));
    }
}

thread_local! {
    static LOCAL: RefCell<Option<Local>> = const { RefCell::new(None) };
}

fn with_local<R>(f: impl FnOnce(&mut Local) -> R) -> Option<R> {
    LOCAL
        .try_with(|cell| {
            let mut opt = cell.borrow_mut();
            f(opt.get_or_insert_with(Local::register))
        })
        .ok()
}

// ---------------------------------------------------------------------------
// Spans.
// ---------------------------------------------------------------------------

/// An open span; records a [`SpanEvent`] on drop. A disabled process gets
/// an inert guard (no allocation, no clock read).
#[must_use = "a span records on drop; binding it to `_` closes it immediately"]
pub struct Span {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: &'static str,
    detail: Option<String>,
    start_ns: u64,
}

/// Open a span named `name` on the current thread's track.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !collecting() {
        return Span { active: None };
    }
    open_span(name, None)
}

/// Open a span with a per-instance label; `detail` is only invoked while
/// a sink is collecting, so label formatting is free on the no-op path.
#[inline]
pub fn span_detail(name: &'static str, detail: impl FnOnce() -> String) -> Span {
    if !collecting() {
        return Span { active: None };
    }
    open_span(name, Some(detail()))
}

fn open_span(name: &'static str, detail: Option<String>) -> Span {
    with_local(|l| l.depth += 1);
    Span { active: Some(ActiveSpan { name, detail, start_ns: now_ns() }) }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        let end = now_ns();
        let trace = current_trace().map_or(0, |t| t.0);
        with_local(move |l| {
            l.depth = l.depth.saturating_sub(1);
            let ev = SpanEvent {
                name: a.name,
                detail: a.detail,
                start_ns: a.start_ns,
                dur_ns: end.saturating_sub(a.start_ns),
                depth: l.depth,
                trace,
            };
            // Spans close child-before-parent, so each sink receives a
            // post-order stream: this is what lets the flight ring's
            // drop-oldest policy preserve well-formed nesting (evicting
            // a prefix removes children before their parents).
            match (enabled(), flight_enabled()) {
                (true, true) => {
                    flight_push(l.shard.track, ev.clone());
                    l.buf.push(ev);
                }
                (true, false) => l.buf.push(ev),
                (false, true) => flight_push(l.shard.track, ev),
                (false, false) => {}
            }
            // Flushing at depth 0 keeps parked pool workers' shards
            // complete: a worker is only ever idle between tasks, i.e.
            // with no span open.
            if l.depth == 0 || l.buf.len() >= FLUSH_AT {
                l.flush();
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Metrics registry.
// ---------------------------------------------------------------------------

/// Add `n` to the named counter on this thread's shard. Counters from
/// all shards are summed at [`drain`] time (addition commutes, so the
/// merged value is worker-count independent).
#[inline]
pub fn counter_add(name: &'static str, n: u64) {
    if !collecting() {
        return;
    }
    with_local(|l| *l.shard.counters.lock().unwrap().entry(name).or_insert(0) += n);
}

/// Record a value into the named histogram on this thread's shard.
/// Values are durations in nanoseconds for `*_ns` metrics and plain
/// magnitudes otherwise (queue depth, batch size).
#[inline]
pub fn record(name: &'static str, value: u64) {
    if !collecting() {
        return;
    }
    with_local(|l| l.shard.hists.lock().unwrap().entry(name).or_default().record(value));
}

// ---------------------------------------------------------------------------
// Drain + snapshot.
// ---------------------------------------------------------------------------

/// One thread's drained events.
#[derive(Debug, Clone)]
pub struct TrackSnapshot {
    pub thread: String,
    pub track: u32,
    pub events: Vec<SpanEvent>,
}

impl TrackSnapshot {
    /// Time covered by top-level spans on this track — the "busy" time
    /// the worker-utilization summary reports.
    pub fn busy_ns(&self) -> u64 {
        self.events.iter().filter(|e| e.depth == 0).map(|e| e.dur_ns).sum()
    }
}

/// Everything collected since the last drain, with per-thread shards
/// merged into order-independent totals.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Per-thread span tracks, in registration order.
    pub tracks: Vec<TrackSnapshot>,
    /// Counters summed across shards.
    pub counters: BTreeMap<&'static str, u64>,
    /// Histograms merged bucket-wise across shards.
    pub hists: BTreeMap<&'static str, Hist>,
}

/// Aggregate of all spans sharing a name, across tracks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanAggregate {
    pub name: &'static str,
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
}

impl TelemetrySnapshot {
    /// Per-name span rollup, sorted by name for deterministic output.
    pub fn span_aggregates(&self) -> Vec<SpanAggregate> {
        let mut by_name: BTreeMap<&'static str, SpanAggregate> = BTreeMap::new();
        for t in &self.tracks {
            for e in &t.events {
                let agg = by_name.entry(e.name).or_insert(SpanAggregate {
                    name: e.name,
                    count: 0,
                    total_ns: 0,
                    min_ns: u64::MAX,
                    max_ns: 0,
                });
                agg.count += 1;
                agg.total_ns += e.dur_ns;
                agg.min_ns = agg.min_ns.min(e.dur_ns);
                agg.max_ns = agg.max_ns.max(e.dur_ns);
            }
        }
        by_name.into_values().collect()
    }
}

/// Take everything recorded so far and reset the sink. Shards stay
/// registered (their threads keep writing into the next snapshot); the
/// caller's local buffer is flushed first so its own spans are included.
pub fn drain() -> TelemetrySnapshot {
    with_local(|l| l.flush());
    let shards: Vec<Arc<ThreadShard>> = registry().shards.lock().unwrap().clone();
    let mut snap = TelemetrySnapshot::default();
    for shard in shards {
        let events = std::mem::take(&mut *shard.events.lock().unwrap());
        if !events.is_empty() {
            snap.tracks.push(TrackSnapshot {
                thread: shard.thread.lock().unwrap().clone(),
                track: shard.track,
                events,
            });
        }
        for (name, v) in std::mem::take(&mut *shard.counters.lock().unwrap()) {
            *snap.counters.entry(name).or_insert(0) += v;
        }
        for (name, h) in std::mem::take(&mut *shard.hists.lock().unwrap()) {
            snap.hists.entry(name).or_default().merge(&h);
        }
    }
    snap.tracks.sort_by_key(|t| t.track);
    snap
}

/// Fold every shard's accumulated counters and histograms into a
/// process-global running total and return a copy. Unlike [`drain`]
/// (which hands the data to one caller and resets everything), the
/// running total is left in place, so repeated `/metrics` scrapes see
/// monotone counters — the Prometheus contract. Span events are *not*
/// consumed; the flight recorder owns those.
///
/// `gather_metrics` and `drain` take from the same shard accumulators,
/// so a process should use one or the other (`serve` gathers; the CLI's
/// `--profile` drains).
pub fn gather_metrics() -> MetricsTotals {
    static TOTALS: OnceLock<Mutex<MetricsTotals>> = OnceLock::new();
    let totals = TOTALS.get_or_init(|| Mutex::new(MetricsTotals::default()));
    let shards: Vec<Arc<ThreadShard>> = registry().shards.lock().unwrap().clone();
    let mut totals = totals.lock().unwrap();
    for shard in shards {
        for (name, v) in std::mem::take(&mut *shard.counters.lock().unwrap()) {
            *totals.counters.entry(name).or_insert(0) += v;
        }
        for (name, h) in std::mem::take(&mut *shard.hists.lock().unwrap()) {
            totals.hists.entry(name).or_default().merge(&h);
        }
    }
    totals.clone()
}

/// Cumulative counter / histogram totals since process start (the
/// `/metrics` view of the sink). See [`gather_metrics`].
#[derive(Debug, Clone, Default)]
pub struct MetricsTotals {
    pub counters: BTreeMap<&'static str, u64>,
    pub hists: BTreeMap<&'static str, Hist>,
}

// ---------------------------------------------------------------------------
// Flight recorder: a bounded ring of the most recent spans.
// ---------------------------------------------------------------------------

/// Lock shards for the flight ring. Tracks map to shards by modulo, so
/// one track's events always live in one shard in push (= post-) order.
const FLIGHT_SHARDS: usize = 8;

struct FlightEvent {
    track: u32,
    event: SpanEvent,
}

impl FlightEvent {
    /// Bytes this entry is charged against the ring budget: the inline
    /// struct plus the heap detail string. (`VecDeque` slack and the
    /// small per-shard fixed overhead are not charged; the budget bounds
    /// the dominant, workload-proportional cost.)
    fn cost(&self) -> usize {
        std::mem::size_of::<FlightEvent>() + self.event.detail.as_ref().map_or(0, |d| d.len())
    }
}

#[derive(Default)]
struct FlightShard {
    ring: VecDeque<FlightEvent>,
    bytes: usize,
    overwritten: u64,
}

fn flight_shards() -> &'static [Mutex<FlightShard>; FLIGHT_SHARDS] {
    static SHARDS: OnceLock<[Mutex<FlightShard>; FLIGHT_SHARDS]> = OnceLock::new();
    SHARDS.get_or_init(|| std::array::from_fn(|_| Mutex::new(FlightShard::default())))
}

/// Append one closed span to its track's ring shard, evicting the
/// oldest entries past the per-shard byte budget. Spans arrive in
/// post-order (children close before parents), so eviction removes
/// children before their parents and each track's surviving suffix
/// still passes [`spans_well_formed`] once all its open spans close.
fn flight_push(track: u32, event: SpanEvent) {
    let budget = (FLIGHT_BYTES.load(Ordering::Relaxed) / FLIGHT_SHARDS).max(1);
    let mut s = flight_shards()[track as usize % FLIGHT_SHARDS].lock().unwrap();
    let ev = FlightEvent { track, event };
    s.bytes += ev.cost();
    s.ring.push_back(ev);
    while s.bytes > budget {
        // Guaranteed to terminate: the ring is non-empty (we just
        // pushed) and popping the last entry takes bytes to zero — an
        // oversized single event evicts itself.
        let old = s.ring.pop_front().expect("bytes > 0 implies a resident event");
        s.bytes -= old.cost();
        s.overwritten += 1;
    }
}

/// Flight-recorder occupancy, for `/metrics`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlightStats {
    /// Resident bytes across all shards (always ≤ `budget_bytes` once
    /// the budget is ≥ [`FLIGHT_SHARDS`], the practical regime).
    pub bytes: usize,
    /// The configured total budget ([`flight_configure`]).
    pub budget_bytes: usize,
    /// Spans currently resident.
    pub events: usize,
    /// Spans overwritten (evicted) since process start.
    pub overwritten: u64,
}

pub fn flight_stats() -> FlightStats {
    let mut st = FlightStats {
        budget_bytes: FLIGHT_BYTES.load(Ordering::Relaxed),
        ..FlightStats::default()
    };
    for shard in flight_shards() {
        let s = shard.lock().unwrap();
        st.bytes += s.bytes;
        st.events += s.ring.len();
        st.overwritten += s.overwritten;
    }
    st
}

/// Empty the ring (tests; the daemon never clears it).
pub fn flight_clear() {
    for shard in flight_shards() {
        let mut s = shard.lock().unwrap();
        s.ring.clear();
        s.bytes = 0;
        s.overwritten = 0;
    }
}

/// Copy out the resident spans, grouped by track and ordered for the
/// nesting validator: `(track, start, Reverse(end), depth)`.
pub fn flight_events() -> Vec<(u32, SpanEvent)> {
    let mut all = Vec::new();
    for shard in flight_shards() {
        let s = shard.lock().unwrap();
        all.extend(s.ring.iter().map(|fe| (fe.track, fe.event.clone())));
    }
    all.sort_by(|(ta, a), (tb, b)| {
        (ta, a.start_ns, std::cmp::Reverse(a.end_ns()), a.depth).cmp(&(
            tb,
            b.start_ns,
            std::cmp::Reverse(b.end_ns()),
            b.depth,
        ))
    });
    all
}

/// Thread names for every registered track (recycled shards report
/// their current owner).
fn track_names() -> HashMap<u32, String> {
    registry()
        .shards
        .lock()
        .unwrap()
        .iter()
        .map(|s| (s.track, s.thread.lock().unwrap().clone()))
        .collect()
}

/// Render the flight ring as a Perfetto-openable Chrome trace document
/// (`GET /trace`). With `filter`, only spans carrying that request id
/// are included (`/trace?job=<id>`). Each event carries its nesting
/// depth and request id in `args`.
///
/// Spans are recorded when they *close*, so a dump taken while requests
/// or jobs are mid-flight can contain child spans whose still-open
/// parents are absent; a dump from a quiescent daemon passes
/// [`spans_well_formed`] per track (what `diogenes trace-check`
/// verifies).
pub fn flight_trace_json(filter: Option<TraceId>) -> Json {
    let names = track_names();
    let mut events =
        vec![chrome_metadata_event("process_name", SELF_TRACE_PID, 0, "diogenes-serve")];
    let mut last_track = None;
    for (track, e) in flight_events() {
        if let Some(f) = filter {
            if e.trace != f.0 {
                continue;
            }
        }
        if last_track != Some(track) {
            last_track = Some(track);
            let fallback;
            let label = match names.get(&track) {
                Some(n) => n.as_str(),
                None => {
                    fallback = format!("track-{track}");
                    &fallback
                }
            };
            events.push(chrome_metadata_event("thread_name", SELF_TRACE_PID, track, label));
        }
        events.push(chrome_duration_event_args(
            e.label(),
            "flight",
            SELF_TRACE_PID,
            track,
            e.start_ns as f64 / 1_000.0,
            (e.dur_ns.max(1)) as f64 / 1_000.0,
            Json::obj([
                ("depth", Json::Int(e.depth as i128)),
                ("trace", Json::Str(format!("{:016x}", e.trace))),
            ]),
        ));
    }
    Json::obj([("traceEvents", Json::Arr(events)), ("displayTimeUnit", "ns".into())])
}

// ---------------------------------------------------------------------------
// Well-formedness (used by the telemetry test suite).
// ---------------------------------------------------------------------------

/// Check that one track's spans form a proper hierarchy: every exit
/// matches an enter (guaranteed structurally by the RAII guard, verified
/// here from the recorded data), spans never partially overlap, and the
/// recorded depth matches the nesting implied by the intervals.
pub fn spans_well_formed(events: &[SpanEvent]) -> Result<(), String> {
    let mut order: Vec<&SpanEvent> = events.iter().collect();
    order.sort_by_key(|e| (e.start_ns, std::cmp::Reverse(e.end_ns()), e.depth));
    let mut stack: Vec<u64> = Vec::new();
    for e in &order {
        while let Some(&top_end) = stack.last() {
            if top_end <= e.start_ns {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&top_end) = stack.last() {
            if e.end_ns() > top_end {
                return Err(format!(
                    "span {:?} [{}, {}) partially overlaps its enclosing span ending at {}",
                    e.label(),
                    e.start_ns,
                    e.end_ns(),
                    top_end
                ));
            }
        }
        if e.depth as usize != stack.len() {
            return Err(format!(
                "span {:?} recorded depth {} but interval nesting implies {}",
                e.label(),
                e.depth,
                stack.len()
            ));
        }
        stack.push(e.end_ns());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Chrome trace-event encoding (shared with `diogenes::traceviz`).
// ---------------------------------------------------------------------------

use crate::json::Json;

/// One complete (`ph:"X"`) trace event in Chrome trace-event JSON.
/// `chrome://tracing`, Perfetto and Speedscope all read this shape; the
/// simulated-app exporter and the tool-self exporter share it so the
/// same viewers open both.
pub fn chrome_duration_event(
    name: String,
    cat: &str,
    pid: u32,
    tid: u32,
    ts_us: f64,
    dur_us: f64,
) -> Json {
    Json::obj([
        ("name", name.into()),
        ("cat", cat.into()),
        ("ph", "X".into()),
        ("pid", Json::Int(pid as i128)),
        ("tid", Json::Int(tid as i128)),
        ("ts", Json::Float(ts_us)),
        ("dur", Json::Float(dur_us)),
    ])
}

/// [`chrome_duration_event`] plus an `args` object — per-event metadata
/// (nesting depth, request id) shown in the viewer's detail panel.
pub fn chrome_duration_event_args(
    name: String,
    cat: &str,
    pid: u32,
    tid: u32,
    ts_us: f64,
    dur_us: f64,
    args: Json,
) -> Json {
    let Json::Obj(mut fields) = chrome_duration_event(name, cat, pid, tid, ts_us, dur_us) else {
        unreachable!("chrome_duration_event returns an object")
    };
    fields.push(("args".to_string(), args));
    Json::Obj(fields)
}

/// A metadata (`ph:"M"`) event labeling a process or thread track, so
/// viewers show `ffm-pool-2` instead of a raw tid integer. `what` is
/// `"process_name"` or `"thread_name"`.
pub fn chrome_metadata_event(what: &str, pid: u32, tid: u32, label: &str) -> Json {
    Json::obj([
        ("name", what.into()),
        ("ph", "M".into()),
        ("pid", Json::Int(pid as i128)),
        ("tid", Json::Int(tid as i128)),
        ("args", Json::obj([("name", label.into())])),
    ])
}

/// The tool's own execution as Chrome trace events: one track per
/// recorded thread (`main`, `ffm-pool-N`, …), labeled with metadata
/// events.
pub fn self_trace_events(snap: &TelemetrySnapshot) -> Vec<Json> {
    let mut events =
        vec![chrome_metadata_event("process_name", SELF_TRACE_PID, 0, "diogenes-self")];
    for t in &snap.tracks {
        events.push(chrome_metadata_event("thread_name", SELF_TRACE_PID, t.track, &t.thread));
        for e in &t.events {
            events.push(chrome_duration_event(
                e.label(),
                "tool",
                SELF_TRACE_PID,
                t.track,
                e.start_ns as f64 / 1_000.0,
                (e.dur_ns.max(1)) as f64 / 1_000.0,
            ));
        }
    }
    events
}

/// Render a snapshot as the `results/TELEMETRY_<app>.json` document:
/// span rollups, merged metrics, per-worker utilization, and the full
/// tool-self Chrome trace under the standard `traceEvents` key (so the
/// artifact itself opens in Perfetto).
pub fn snapshot_to_json(app: &str, workload: &str, jobs: usize, snap: &TelemetrySnapshot) -> Json {
    let spans = snap
        .span_aggregates()
        .into_iter()
        .map(|a| {
            Json::obj([
                ("name", a.name.into()),
                ("count", Json::Int(a.count as i128)),
                ("total_ns", Json::Int(a.total_ns as i128)),
                ("min_ns", Json::Int(a.min_ns as i128)),
                ("max_ns", Json::Int(a.max_ns as i128)),
            ])
        })
        .collect();
    let counters =
        snap.counters.iter().map(|(k, v)| (k.to_string(), Json::Int(*v as i128))).collect();
    let hists = snap
        .hists
        .iter()
        .map(|(k, h)| {
            let buckets: Vec<Json> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| {
                    let lo = if i == 0 { 0u64 } else { 1u64 << (i - 1) };
                    Json::arr([Json::Int(lo as i128), Json::Int(c as i128)])
                })
                .collect();
            (
                k.to_string(),
                Json::obj([
                    ("count", Json::Int(h.count as i128)),
                    ("sum", Json::Int(h.sum as i128)),
                    ("min", Json::Int(if h.count == 0 { 0 } else { h.min as i128 })),
                    ("max", Json::Int(h.max as i128)),
                    ("mean", Json::Float(h.mean())),
                    ("buckets", Json::Arr(buckets)),
                ]),
            )
        })
        .collect();
    let workers = snap
        .tracks
        .iter()
        .map(|t| {
            Json::obj([
                ("thread", Json::Str(t.thread.clone())),
                ("spans", Json::Int(t.events.len() as i128)),
                ("busy_ns", Json::Int(t.busy_ns() as i128)),
            ])
        })
        .collect();
    Json::obj([
        ("telemetry", "diogenes-self".into()),
        ("app", app.into()),
        ("workload", workload.into()),
        ("jobs", Json::Int(jobs as i128)),
        ("spans", Json::Arr(spans)),
        ("counters", Json::Obj(counters)),
        ("histograms", Json::Obj(hists)),
        ("workers", Json::Arr(workers)),
        ("traceEvents", Json::Arr(self_trace_events(snap))),
        ("displayTimeUnit", "ns".into()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Telemetry tests share one process-global sink, so they serialize
    /// on this lock and assert "contains", never "equals" (other test
    /// modules may run concurrently while the flag is on).
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_paths_record_nothing_and_allocate_nothing() {
        let _g = test_lock();
        set_enabled(false);
        let s = span("never");
        assert!(s.active.is_none(), "disabled span must be inert");
        drop(s);
        counter_add("never.counter", 7);
        record("never.hist", 7);
        let snap = drain();
        assert!(!snap.counters.contains_key("never.counter"));
        assert!(!snap.hists.contains_key("never.hist"));
        assert!(snap.tracks.iter().all(|t| t.events.iter().all(|e| e.name != "never")));
    }

    #[test]
    fn spans_counters_and_hists_round_trip() {
        let _g = test_lock();
        set_enabled(true);
        {
            let _outer = span_detail("tele.outer", || "label".to_string());
            let _inner = span("tele.inner");
            counter_add("tele.count", 2);
            counter_add("tele.count", 3);
            record("tele.hist", 10);
            record("tele.hist", 1000);
        }
        set_enabled(false);
        let snap = drain();
        assert_eq!(snap.counters["tele.count"], 5);
        let h = &snap.hists["tele.hist"];
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 1010, 10, 1000));
        let me: Vec<&SpanEvent> = snap
            .tracks
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| e.name.starts_with("tele."))
            .collect();
        assert_eq!(me.len(), 2);
        let outer = me.iter().find(|e| e.name == "tele.outer").unwrap();
        let inner = me.iter().find(|e| e.name == "tele.inner").unwrap();
        assert_eq!(outer.detail.as_deref(), Some("label"));
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns() <= outer.end_ns());
        let aggs = snap.span_aggregates();
        let oa = aggs.iter().find(|a| a.name == "tele.outer").unwrap();
        assert_eq!((oa.count, oa.total_ns), (1, outer.dur_ns));
    }

    #[test]
    fn worker_threads_get_their_own_tracks() {
        let _g = test_lock();
        set_enabled(true);
        // Keep the worker alive across the drain: a dead thread's shard
        // enters the recycling free list and may be renamed by its next
        // owner, so the name is only stable while the thread lives.
        let (recorded_tx, recorded_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let worker = std::thread::Builder::new()
            .name("tele-worker".to_string())
            .spawn(move || {
                {
                    let _s = span("tele.on_worker");
                }
                recorded_tx.send(()).unwrap();
                release_rx.recv().unwrap();
            })
            .unwrap();
        recorded_rx.recv().unwrap();
        set_enabled(false);
        let snap = drain();
        release_tx.send(()).unwrap();
        worker.join().unwrap();
        let track = snap
            .tracks
            .iter()
            .find(|t| t.events.iter().any(|e| e.name == "tele.on_worker"))
            .expect("worker span recorded");
        assert_eq!(track.thread, "tele-worker");
        spans_well_formed(&track.events).unwrap();
    }

    #[test]
    fn hist_merge_is_order_independent() {
        let values_a = [0u64, 1, 5, 1023, 1024, u64::MAX];
        let values_b = [3u64, 3, 3, 1 << 40];
        let mut a = Hist::default();
        let mut b = Hist::default();
        for v in values_a {
            a.record(v);
        }
        for v in values_b {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must commute");
        // And both equal recording everything into one histogram.
        let mut one = Hist::default();
        for v in values_a.iter().chain(values_b.iter()) {
            one.record(*v);
        }
        assert_eq!(ab, one, "merge must equal single-shard recording");
    }

    #[test]
    fn hist_buckets_are_power_of_two_ranges() {
        let mut h = Hist::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        assert_eq!(h.buckets[0], 1, "zero bucket");
        assert_eq!(h.buckets[1], 1, "[1,2)");
        assert_eq!(h.buckets[2], 2, "[2,4)");
        assert_eq!(h.buckets[3], 1, "[4,8)");
    }

    #[test]
    fn trace_scopes_nest_and_restore() {
        assert_eq!(current_trace(), None);
        {
            let _a = trace_scope(Some(TraceId(7)));
            assert_eq!(current_trace(), Some(TraceId(7)));
            {
                let _b = trace_scope(Some(TraceId(9)));
                assert_eq!(current_trace(), Some(TraceId(9)));
                let _c = trace_scope(None);
                assert_eq!(current_trace(), None);
            }
            assert_eq!(current_trace(), Some(TraceId(7)));
        }
        assert_eq!(current_trace(), None);
    }

    #[test]
    fn quantiles_stay_in_observed_range_and_are_monotone() {
        assert_eq!(Hist::default().quantile(0.5), 0, "empty hist");
        let mut one = Hist::default();
        one.record(42);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(one.quantile(q), 42, "single-value hist at q={q}");
        }
        let mut h = Hist::default();
        for v in [3u64, 9, 17, 1_000, 65_536] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), h.min);
        assert_eq!(h.quantile(1.0), h.max);
        let mut prev = 0;
        for i in 0..=20 {
            let q = h.quantile(i as f64 / 20.0);
            assert!((h.min..=h.max).contains(&q), "q estimate {q} outside [min, max]");
            assert!(q >= prev, "quantile must be monotone in q");
            prev = q;
        }
    }

    #[test]
    fn flight_ring_bounds_bytes_and_survives_wraparound() {
        let _g = test_lock();
        set_enabled(false);
        let budget = 16 * 1024;
        flight_configure(budget);
        flight_clear();
        // Push far more span bytes than the budget holds; every
        // iteration closes a complete `[outer [inner]]` tree under a
        // distinct trace id.
        std::thread::Builder::new()
            .name("flight-test".to_string())
            .spawn(|| {
                for i in 0..4000u64 {
                    let _t = trace_scope(Some(TraceId(i + 1)));
                    let _outer = span_detail("flight.outer", || format!("iter-{i}"));
                    let _inner = span("flight.inner");
                }
            })
            .unwrap()
            .join()
            .unwrap();
        let st = flight_stats();
        assert!(st.bytes <= budget, "resident {} bytes exceed the {budget} budget", st.bytes);
        assert!(st.overwritten > 0, "8000 spans into 16KiB must wrap");
        assert!(st.events > 0, "the ring retains a recent suffix");
        // The surviving suffix of the test thread's track is still a
        // well-formed hierarchy, and every span carries its trace id.
        let evs: Vec<SpanEvent> = flight_events()
            .into_iter()
            .filter(|(_, e)| e.name.starts_with("flight."))
            .map(|(_, e)| e)
            .collect();
        assert!(!evs.is_empty());
        spans_well_formed(&evs).unwrap();
        assert!(evs.iter().all(|e| e.trace != 0), "spans inherit the installed trace id");
        // Nothing leaked into the drainable profiling sink: telemetry
        // proper was off the whole time.
        assert!(drain()
            .tracks
            .iter()
            .all(|t| t.events.iter().all(|e| !e.name.starts_with("flight."))));
        flight_configure(0);
        flight_clear();
    }

    #[test]
    fn flight_trace_json_is_perfetto_shaped_and_filters_by_trace() {
        let _g = test_lock();
        set_enabled(false);
        flight_configure(64 * 1024);
        flight_clear();
        {
            let _t = trace_scope(Some(TraceId(0xabcd)));
            let _s = span("flight.wanted");
        }
        {
            let _t = trace_scope(Some(TraceId(0x1234)));
            let _s = span("flight.other");
        }
        let all = flight_trace_json(None).to_string_compact();
        assert!(all.contains("\"traceEvents\""), "{all}");
        assert!(all.contains("flight.wanted") && all.contains("flight.other"), "{all}");
        assert!(all.contains("\"process_name\""), "{all}");
        let filtered = flight_trace_json(Some(TraceId(0xabcd))).to_string_compact();
        assert!(filtered.contains("flight.wanted"), "{filtered}");
        assert!(!filtered.contains("flight.other"), "{filtered}");
        assert!(filtered.contains("000000000000abcd"), "args carry the request id: {filtered}");
        flight_configure(0);
        flight_clear();
    }

    #[test]
    fn nesting_validator_accepts_proper_hierarchies() {
        let ev = |name, start, dur, depth| SpanEvent {
            name,
            detail: None,
            start_ns: start,
            dur_ns: dur,
            depth,
            trace: 0,
        };
        // [a [b] [c]] [d]
        let good =
            vec![ev("a", 0, 100, 0), ev("b", 10, 20, 1), ev("c", 40, 30, 1), ev("d", 120, 10, 0)];
        spans_well_formed(&good).unwrap();
        assert!(spans_well_formed(&[]).is_ok());
    }

    #[test]
    fn nesting_validator_rejects_partial_overlap_and_bad_depth() {
        let ev = |name, start, dur, depth| SpanEvent {
            name,
            detail: None,
            start_ns: start,
            dur_ns: dur,
            depth,
            trace: 0,
        };
        let overlap = vec![ev("a", 0, 50, 0), ev("b", 25, 50, 1)];
        assert!(spans_well_formed(&overlap).is_err(), "partial overlap must be rejected");
        let bad_depth = vec![ev("a", 0, 100, 0), ev("b", 10, 20, 2)];
        assert!(spans_well_formed(&bad_depth).is_err(), "depth mismatch must be rejected");
    }

    #[test]
    fn chrome_events_have_viewer_required_fields() {
        let x = chrome_duration_event("work".to_string(), "tool", 1, 3, 1.5, 2.0);
        let s = x.to_string_compact();
        assert!(s.contains("\"ph\":\"X\""), "{s}");
        assert!(s.contains("\"tid\":3"), "{s}");
        let m = chrome_metadata_event("thread_name", 1, 3, "ffm-pool-3");
        let s = m.to_string_compact();
        assert!(s.contains("\"ph\":\"M\""), "{s}");
        assert!(s.contains("\"args\":{\"name\":\"ffm-pool-3\"}"), "{s}");
    }

    #[test]
    fn snapshot_json_contains_all_sections() {
        let snap = TelemetrySnapshot {
            tracks: vec![TrackSnapshot {
                thread: "main".to_string(),
                track: 0,
                events: vec![SpanEvent {
                    name: "run_ffm",
                    detail: Some("als".to_string()),
                    start_ns: 5,
                    dur_ns: 100,
                    depth: 0,
                    trace: 0,
                }],
            }],
            counters: [("graph.nodes", 42u64)].into_iter().collect(),
            hists: {
                let mut h = Hist::default();
                h.record(7);
                [("pool.batch_size", h)].into_iter().collect()
            },
        };
        let doc = snapshot_to_json("als", "w", 4, &snap).to_string_pretty();
        for key in [
            "\"app\"",
            "\"spans\"",
            "\"counters\"",
            "\"histograms\"",
            "\"workers\"",
            "\"traceEvents\"",
            "run_ffm",
            "graph.nodes",
            "pool.batch_size",
            "\"ph\": \"M\"",
        ] {
            assert!(doc.contains(key), "missing {key} in:\n{doc}");
        }
    }
}
