//! Ingest buffers for zero-copy FFB reads: memory-mapped files with a
//! plain-read fallback, plus a global reusable buffer pool.
//!
//! The workspace is std-only, so [`MappedFile`] drives `mmap(2)` through
//! a minimal raw-syscall wrapper on Linux (x86_64 / aarch64). Everywhere
//! else — or when the syscall fails, the file is empty, or
//! `DIOGENES_NO_MMAP` is set — [`read_file`] falls back to reading into
//! a pooled buffer. Either way the caller holds one contiguous `&[u8]`
//! it can hand to the borrowed decode layer ([`crate::codec::FfbView`])
//! without further copies. Mapped buffers carry no alignment guarantee
//! beyond the page the kernel picks, and FFB section payloads start at
//! arbitrary offsets anyway, so the decode layer never assumes
//! alignment (see `codec::ColU64`).
//!
//! The pool ([`acquire`] / [`release`]) recycles ingest buffers across
//! keep-alive HTTP exchanges and artifact-cache disk reads; reuse is
//! observable via [`stats`] and exported by `diogenes serve` as
//! `diogenes_ingest_buffer_reuse_total`.

use std::io::Read as _;
use std::ops::{Deref, DerefMut};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Buffers kept in the pool; excess released buffers go back to the
/// allocator.
const MAX_POOLED: usize = 32;

/// A released buffer above this capacity is dropped rather than pinned
/// in the pool forever (a one-off huge request body should not hold
/// 64 MiB hostage).
const MAX_POOLED_CAPACITY: usize = 16 * 1024 * 1024;

static POOL: Mutex<Vec<Vec<u8>>> = Mutex::new(Vec::new());
static REUSED: AtomicU64 = AtomicU64::new(0);
static ALLOCATED: AtomicU64 = AtomicU64::new(0);
static MAPPED: AtomicU64 = AtomicU64::new(0);
static FALLBACKS: AtomicU64 = AtomicU64::new(0);

/// Counters for pool and mapping activity since process start.
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestStats {
    /// Buffers handed out from the pool instead of freshly allocated.
    pub buffer_reuse: u64,
    /// Buffers handed out empty because the pool was dry.
    pub buffer_allocs: u64,
    /// File reads served by `mmap`.
    pub mapped_reads: u64,
    /// File reads served by a plain read into a pooled buffer.
    pub fallback_reads: u64,
}

/// Snapshot of the ingest counters.
pub fn stats() -> IngestStats {
    IngestStats {
        buffer_reuse: REUSED.load(Ordering::Relaxed),
        buffer_allocs: ALLOCATED.load(Ordering::Relaxed),
        mapped_reads: MAPPED.load(Ordering::Relaxed),
        fallback_reads: FALLBACKS.load(Ordering::Relaxed),
    }
}

/// A pooled byte buffer; returns to the pool on drop. Dereferences to
/// `Vec<u8>`, so it slots in anywhere a scratch vector would.
pub struct PooledBuf(Option<Vec<u8>>);

impl PooledBuf {
    /// Detach the underlying vector; it will no longer return to the
    /// pool automatically (pass it to [`release`] once done).
    pub fn into_inner(mut self) -> Vec<u8> {
        self.0.take().unwrap_or_default()
    }
}

impl Deref for PooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        self.0.as_ref().expect("pooled buffer present until drop")
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        self.0.as_mut().expect("pooled buffer present until drop")
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(buf) = self.0.take() {
            release(buf);
        }
    }
}

/// Take an empty buffer from the pool, or a fresh one if it is dry.
pub fn acquire() -> PooledBuf {
    let reused = POOL.lock().ok().and_then(|mut pool| pool.pop());
    match reused {
        Some(mut buf) => {
            REUSED.fetch_add(1, Ordering::Relaxed);
            buf.clear();
            PooledBuf(Some(buf))
        }
        None => {
            ALLOCATED.fetch_add(1, Ordering::Relaxed);
            PooledBuf(Some(Vec::new()))
        }
    }
}

/// Return a buffer to the pool. Contents are discarded; oversized or
/// surplus buffers go back to the allocator instead.
pub fn release(buf: Vec<u8>) {
    if buf.capacity() == 0 || buf.capacity() > MAX_POOLED_CAPACITY {
        return;
    }
    if let Ok(mut pool) = POOL.lock() {
        if pool.len() < MAX_POOLED {
            pool.push(buf);
        }
    }
}

/// A read-only memory-mapped file. Unmapped on drop.
pub struct MappedFile {
    ptr: std::ptr::NonNull<u8>,
    len: usize,
}

// SAFETY: the mapping is PROT_READ/MAP_PRIVATE and never mutated; a
// byte slice over it is as shareable as any other immutable buffer.
unsafe impl Send for MappedFile {}
unsafe impl Sync for MappedFile {}

impl MappedFile {
    /// Map `path` read-only. `Err` means the file cannot be opened at
    /// all; `Ok(None)` means it opened but cannot be mapped (empty
    /// file, unsupported platform, or syscall failure) and the caller
    /// should fall back to a plain read.
    pub fn open(path: &Path) -> std::io::Result<Option<MappedFile>> {
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        Ok(Self::from_file(&file, len))
    }

    fn from_file(file: &std::fs::File, len: u64) -> Option<MappedFile> {
        // mmap rejects zero-length mappings, and usize::try_from guards
        // hypothetical 32-bit hosts against >4 GiB files.
        let len = usize::try_from(len).ok().filter(|&l| l > 0)?;
        let ptr = sys::mmap_file(file, len)?;
        Some(MappedFile { ptr: std::ptr::NonNull::new(ptr)?, len })
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false: empty files never map (see [`MappedFile::open`]).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Deref for MappedFile {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        // SAFETY: ptr/len describe a live PROT_READ mapping owned by
        // self; it stays valid until Drop runs.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        sys::munmap(self.ptr.as_ptr(), self.len);
    }
}

/// A file's bytes, however they were brought in. Dereferences to
/// `&[u8]`; pooled backing returns to the pool on drop.
pub enum IngestBuf {
    /// Memory-mapped — the kernel pages bytes in on demand.
    Mapped(MappedFile),
    /// Read into a pooled buffer.
    Pooled(PooledBuf),
}

impl IngestBuf {
    /// Whether the bytes come from an mmap rather than a copy.
    pub fn is_mapped(&self) -> bool {
        matches!(self, IngestBuf::Mapped(_))
    }
}

impl Deref for IngestBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match self {
            IngestBuf::Mapped(m) => m,
            IngestBuf::Pooled(b) => b,
        }
    }
}

/// Read a whole file for ingest: mmap when possible, pooled read
/// otherwise. `DIOGENES_NO_MMAP` (any non-empty value) forces the
/// fallback — useful for A/B-testing the two paths on one artifact.
pub fn read_file(path: &Path) -> std::io::Result<IngestBuf> {
    read_file_with(path, mmap_enabled())
}

fn mmap_enabled() -> bool {
    std::env::var_os("DIOGENES_NO_MMAP").is_none_or(|v| v.is_empty())
}

fn read_file_with(path: &Path, allow_mmap: bool) -> std::io::Result<IngestBuf> {
    let mut file = std::fs::File::open(path)?;
    if allow_mmap {
        let len = file.metadata()?.len();
        if let Some(map) = MappedFile::from_file(&file, len) {
            MAPPED.fetch_add(1, Ordering::Relaxed);
            return Ok(IngestBuf::Mapped(map));
        }
    }
    FALLBACKS.fetch_add(1, Ordering::Relaxed);
    let mut buf = acquire();
    file.read_to_end(&mut buf)?;
    Ok(IngestBuf::Pooled(buf))
}

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod sys {
    //! Raw `mmap`/`munmap` for the std-only workspace: no libc, so the
    //! syscalls are issued directly. Read-only private mappings only.
    use std::os::fd::AsRawFd;

    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    #[cfg(target_arch = "x86_64")]
    const SYS_MMAP: usize = 9;
    #[cfg(target_arch = "x86_64")]
    const SYS_MUNMAP: usize = 11;
    #[cfg(target_arch = "aarch64")]
    const SYS_MMAP: usize = 222;
    #[cfg(target_arch = "aarch64")]
    const SYS_MUNMAP: usize = 215;

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        // SAFETY: the `syscall` instruction clobbers rcx/r11; all other
        // registers are declared. The caller vouches for the arguments.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") n => ret,
                in("rdi") a,
                in("rsi") b,
                in("rdx") c,
                in("r10") d,
                in("r8") e,
                in("r9") f,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        // SAFETY: svc #0 with the syscall number in x8; arguments in
        // x0..x5, result in x0. The caller vouches for the arguments.
        unsafe {
            std::arch::asm!(
                "svc #0",
                in("x8") n,
                inlateout("x0") a => ret,
                in("x1") b,
                in("x2") c,
                in("x3") d,
                in("x4") e,
                in("x5") f,
                options(nostack),
            );
        }
        ret
    }

    /// Map `len` bytes of `file` read-only; `None` on any failure.
    pub fn mmap_file(file: &std::fs::File, len: usize) -> Option<*mut u8> {
        let fd = file.as_raw_fd();
        if fd < 0 || len == 0 {
            return None;
        }
        // SAFETY: addr=0 lets the kernel pick; fd/len come from an open
        // file we hold a handle to for the duration of the call.
        let ret = unsafe { syscall6(SYS_MMAP, 0, len, PROT_READ, MAP_PRIVATE, fd as usize, 0) };
        // Failure is -errno in [-4095, -1]; 0 cannot come back for a
        // non-MAP_FIXED request but is rejected anyway.
        if (-4095..=0).contains(&ret) {
            return None;
        }
        Some(ret as *mut u8)
    }

    /// Unmap a region obtained from [`mmap_file`]. Failure is ignored —
    /// there is no recovery from a bad unmap at drop time.
    pub fn munmap(ptr: *mut u8, len: usize) {
        if len == 0 {
            return;
        }
        // SAFETY: ptr/len describe a mapping returned by mmap_file that
        // nobody dereferences after this call.
        unsafe { syscall6(SYS_MUNMAP, ptr as usize, len, 0, 0, 0, 0) };
    }
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
mod sys {
    /// No mmap wrapper on this platform; callers take the read fallback.
    pub fn mmap_file(_file: &std::fs::File, _len: usize) -> Option<*mut u8> {
        None
    }

    pub fn munmap(_ptr: *mut u8, _len: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("iobuf-{}-{name}", std::process::id()));
        std::fs::write(&path, contents).expect("write temp file");
        path
    }

    #[test]
    fn pool_recycles_and_clears_buffers() {
        let mut buf = acquire();
        buf.extend_from_slice(b"leftover bytes");
        let cap = buf.capacity();
        drop(buf);
        // The pool is global and shared with concurrent tests, so pop
        // until a recycled buffer with our capacity shows up.
        for _ in 0..MAX_POOLED {
            let again = acquire();
            assert!(again.is_empty(), "recycled buffers must come back empty");
            if again.capacity() == cap {
                return;
            }
        }
        panic!("released buffer never came back from the pool");
    }

    #[test]
    fn release_drops_oversized_buffers() {
        release(Vec::with_capacity(MAX_POOLED_CAPACITY + 1));
        for _ in 0..MAX_POOLED {
            assert!(acquire().capacity() <= MAX_POOLED_CAPACITY);
        }
    }

    #[test]
    fn mapped_and_fallback_reads_are_identical() {
        let payload: Vec<u8> = (0..70_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let path = temp_file("identity", &payload);
        let mapped = read_file_with(&path, true).expect("mmap read");
        let plain = read_file_with(&path, false).expect("fallback read");
        assert!(!plain.is_mapped());
        assert_eq!(&mapped[..], &payload[..]);
        assert_eq!(&plain[..], &payload[..]);
        // On Linux the mapped path must actually map; elsewhere it
        // falls back and the byte identity above is the whole story.
        #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
        assert!(mapped.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_files_fall_back_to_pooled_reads() {
        let path = temp_file("empty", b"");
        let buf = read_file(&path).expect("read empty file");
        assert!(!buf.is_mapped());
        assert!(buf.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_files_error() {
        assert!(read_file(Path::new("/nonexistent/iobuf-missing")).is_err());
    }

    #[test]
    fn stats_counters_move() {
        let before = stats();
        let path = temp_file("stats", b"0123456789");
        read_file_with(&path, false).expect("fallback read");
        let after = stats();
        assert!(after.fallback_reads > before.fallback_reads);
        assert!(
            after.buffer_reuse + after.buffer_allocs >= before.buffer_reuse + before.buffer_allocs
        );
        std::fs::remove_file(&path).ok();
    }
}
