//! Node groupings (paper §3.5.2).
//!
//! Multiple problematic operations usually share one underlying cause, so
//! Diogenes groups them where a single fix would apply: at one call site
//! (**single point**), in one function with template instances folded
//! together (**folded function**), or across a contiguous run of
//! problematic operations (**sequence**, with carry-forward of savings
//! that one window's GPU idle time could not absorb). Sequences support
//! user-refined **subsequences** (paper Fig. 8).

use std::collections::HashMap;
use std::fmt::Write as _;

use cuda_driver::ApiFn;
use gpu_sim::{Ns, SourceLoc};

use crate::analysis::{Analysis, AnalysisConfig, ProblemOp};
use crate::benefit::{BenefitFold, BenefitReport, NodeBenefit};
use crate::graph::{Csr, ExecGraph, GraphIndex, NType, RowRemap};
use crate::intern::{intern, intern_static, Sym};
use crate::par::par_map;
use crate::problem::Problem;

/// How a group was formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupKind {
    SinglePoint,
    FoldedFunction,
    Sequence,
}

/// A group of problematic operations sharing a fix point.
#[derive(Debug, Clone)]
pub struct ProblemGroup {
    pub kind: GroupKind,
    /// Human-readable identity ("cudaFree in als.cpp at line 856",
    /// "Fold on cudaFree", ...), interned — resolve with
    /// [`Sym::resolve`]; exporters write it via [`crate::Json::Sym`].
    pub label: Sym,
    pub benefit_ns: Ns,
    /// Graph node indices of the members.
    pub nodes: Vec<usize>,
    pub sync_issues: usize,
    pub transfer_issues: usize,
}

/// Intern the composed site label for a node ("cudaFree in als.cpp at
/// line 856"). `buf` is a reusable compose buffer: once it has grown to
/// the longest label and every distinct label is in the intern table,
/// calls allocate nothing.
fn site_label_sym(graph: &ExecGraph, node: usize, buf: &mut String) -> Sym {
    let n = &graph.nodes[node];
    match (n.api, n.site) {
        (Some(api), Some(site)) => {
            buf.clear();
            let _ = write!(buf, "{} in {} at line {}", api.name(), site.file, site.line);
            intern(buf)
        }
        (Some(api), None) => intern_static(api.name()),
        _ => intern_static("<unknown>"),
    }
}

/// Intern the per-API fold label ("Fold on cudaFree").
fn fold_label_sym(graph: &ExecGraph, node: usize, buf: &mut String) -> Sym {
    buf.clear();
    let _ =
        write!(buf, "Fold on {}", graph.nodes[node].api.map(|a| a.name()).unwrap_or("<unknown>"));
    intern(buf)
}

/// Reusable working state for the dense grouping passes.
///
/// The old implementation keyed a `HashMap<String, (Vec<usize>, Ns)>`
/// per call and cloned keys into an order list; this struct replaces it
/// with dense `Vec`-indexed tables keyed by a small group id (`gid`,
/// assigned in first-appearance order) and a [`Csr`] member index built
/// by counting sort. All buffers are retained between calls, so
/// steady-state grouping — repeat passes over same-shaped graphs —
/// allocates nothing (`bench_analysis --smoke` asserts this).
#[derive(Debug, Default, Clone)]
pub struct GroupScratch {
    /// Grouping key (sig / folded sig / API index) → gid.
    gid_of_key: HashMap<u64, u32>,
    /// gid → representative node (first member in benefit order).
    rep_node: Vec<usize>,
    /// gid → summed benefit.
    benefit: Vec<Ns>,
    /// gid → member problem tallies.
    sync_issues: Vec<usize>,
    transfer_issues: Vec<usize>,
    /// (gid, node) per benefit entry, in benefit order.
    pairs: Vec<(u32, usize)>,
    /// gid → member nodes, CSR layout.
    members: Csr,
    /// gids sorted for presentation (descending benefit, ties in
    /// first-appearance order).
    sorted: Vec<u32>,
    /// Compose buffer for label interning.
    label_buf: String,
}

/// Read-only view of one group inside a [`GroupScratch`].
#[derive(Debug, Clone, Copy)]
pub struct GroupView<'a> {
    pub benefit_ns: Ns,
    /// Member nodes, in benefit (graph) order.
    pub nodes: &'a [usize],
    /// Representative (first) member node, for labeling.
    pub rep_node: usize,
    pub sync_issues: usize,
    pub transfer_issues: usize,
}

impl GroupScratch {
    pub fn new() -> GroupScratch {
        GroupScratch::default()
    }

    /// Run one grouping pass: bucket every benefit entry by `key`,
    /// accumulate per-group totals and issue tallies into the dense
    /// tables, build the CSR member index, and sort group ids by
    /// descending benefit (ties keep first-appearance order, matching
    /// the retired stable map-based sort).
    pub fn compute(&mut self, benefit: &BenefitReport, key: impl FnMut(usize) -> Option<u64>) {
        self.begin();
        self.absorb(&benefit.per_node, key);
        self.seal();
    }

    /// Clear the accumulation tables (keeping capacity) for a fresh
    /// grouping pass. Part of the append path: `begin` / repeated
    /// [`GroupScratch::absorb`] / [`GroupScratch::seal`] is the windowed
    /// decomposition of [`GroupScratch::compute`].
    pub fn begin(&mut self) {
        self.gid_of_key.clear();
        self.rep_node.clear();
        self.benefit.clear();
        self.sync_issues.clear();
        self.transfer_issues.clear();
        self.pairs.clear();
    }

    /// Fold more benefit entries into the running tables. Entries must
    /// arrive in benefit (graph) order across calls so gid assignment —
    /// and therefore presentation tie-breaking and member order — is
    /// identical to a one-shot [`GroupScratch::compute`] over the
    /// concatenation. Steady state this allocates nothing: the tables
    /// grow only while new keys keep appearing.
    pub fn absorb(&mut self, entries: &[NodeBenefit], mut key: impl FnMut(usize) -> Option<u64>) {
        for nb in entries {
            let Some(k) = key(nb.node) else { continue };
            let next = self.rep_node.len() as u32;
            let gid = *self.gid_of_key.entry(k).or_insert(next);
            if gid == next {
                self.rep_node.push(nb.node);
                self.benefit.push(0);
                self.sync_issues.push(0);
                self.transfer_issues.push(0);
            }
            let g = gid as usize;
            self.benefit[g] += nb.benefit_ns;
            if nb.problem.is_sync() {
                self.sync_issues[g] += 1;
            } else if nb.problem == Problem::UnnecessaryTransfer {
                self.transfer_issues[g] += 1;
            }
            self.pairs.push((gid, nb.node));
        }
    }

    /// Build the CSR member index and the presentation order from the
    /// accumulated tables.
    pub fn seal(&mut self) {
        self.members.rebuild_from_pairs(self.rep_node.len(), &self.pairs);
        self.sorted.clear();
        self.sorted.extend(0..self.rep_node.len() as u32);
        // Unstable sort with the gid tiebreak ≡ stable sort by benefit:
        // gids are assigned in first-appearance order. In-place, so no
        // merge buffer allocation.
        let benefit = &self.benefit;
        self.sorted.sort_unstable_by_key(|&g| (std::cmp::Reverse(benefit[g as usize]), g));
    }

    /// Copy another scratch's accumulated state into this one, reusing
    /// this scratch's buffers. Used by streaming snapshots: the running
    /// tables are copied, overlaid with still-pending entries, and
    /// sealed — without disturbing the incremental state.
    pub fn copy_from(&mut self, other: &GroupScratch) {
        self.gid_of_key.clone_from(&other.gid_of_key);
        self.rep_node.clone_from(&other.rep_node);
        self.benefit.clone_from(&other.benefit);
        self.sync_issues.clone_from(&other.sync_issues);
        self.transfer_issues.clone_from(&other.transfer_issues);
        self.pairs.clone_from(&other.pairs);
    }

    /// `(gid, node)` pairs accumulated so far, in absorption order —
    /// the input feed for windowed member-delta rebuilds
    /// ([`Csr::rebuild_from_pairs_windowed`]).
    pub fn pairs(&self) -> &[(u32, usize)] {
        &self.pairs
    }

    /// Number of distinct groups accumulated so far (valid before
    /// [`GroupScratch::seal`], unlike [`GroupScratch::len`]).
    pub fn group_count(&self) -> usize {
        self.rep_node.len()
    }

    /// Number of groups found by the last [`GroupScratch::compute`].
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Group `i` in presentation (descending-benefit) order.
    pub fn group(&self, i: usize) -> GroupView<'_> {
        let gid = self.sorted[i] as usize;
        GroupView {
            benefit_ns: self.benefit[gid],
            nodes: self.members.row(gid),
            rep_node: self.rep_node[gid],
            sync_issues: self.sync_issues[gid],
            transfer_issues: self.transfer_issues[gid],
        }
    }

    /// Materialize owned [`ProblemGroup`]s from the scratch tables.
    fn materialize(
        &mut self,
        graph: &ExecGraph,
        kind: GroupKind,
        label: impl Fn(&ExecGraph, usize, &mut String) -> Sym,
    ) -> Vec<ProblemGroup> {
        let mut buf = std::mem::take(&mut self.label_buf);
        let groups = (0..self.len())
            .map(|i| {
                let v = self.group(i);
                ProblemGroup {
                    kind,
                    label: label(graph, v.rep_node, &mut buf),
                    benefit_ns: v.benefit_ns,
                    nodes: v.nodes.to_vec(),
                    sync_issues: v.sync_issues,
                    transfer_issues: v.transfer_issues,
                }
            })
            .collect();
        self.label_buf = buf;
        groups
    }

    /// Single-point pass ([`single_point_groups`] on reusable scratch).
    pub fn compute_single_point(&mut self, graph: &ExecGraph, benefit: &BenefitReport) {
        self.compute(benefit, |n| graph.nodes[n].instance.map(|i| i.sig));
    }

    /// Folded-function pass ([`folded_function_groups`] on reusable
    /// scratch).
    pub fn compute_folded_function(&mut self, graph: &ExecGraph, benefit: &BenefitReport) {
        self.compute(benefit, |n| graph.nodes[n].folded_sig);
    }

    /// Per-API fold pass ([`fold_on_api`] on reusable scratch).
    pub fn compute_api_fold(&mut self, graph: &ExecGraph, benefit: &BenefitReport) {
        self.compute(benefit, |n| graph.nodes[n].api.map(|a| a.index() as u64));
    }

    /// Materialize sealed single-point groups with site labels.
    pub fn materialize_single_point(&mut self, graph: &ExecGraph) -> Vec<ProblemGroup> {
        self.materialize(graph, GroupKind::SinglePoint, site_label_sym)
    }

    /// Materialize sealed per-API folds with "Fold on ..." labels.
    pub fn materialize_api_fold(&mut self, graph: &ExecGraph) -> Vec<ProblemGroup> {
        self.materialize(graph, GroupKind::FoldedFunction, fold_label_sym)
    }

    /// Materialize sealed folded-function groups with site labels.
    pub fn materialize_folded_function(&mut self, graph: &ExecGraph) -> Vec<ProblemGroup> {
        self.materialize(graph, GroupKind::FoldedFunction, site_label_sym)
    }
}

/// Single-point grouping: identical stack traces matched by address.
pub fn single_point_groups(graph: &ExecGraph, benefit: &BenefitReport) -> Vec<ProblemGroup> {
    let mut scratch = GroupScratch::new();
    scratch.compute_single_point(graph, benefit);
    scratch.materialize_single_point(graph)
}

/// Folded-function grouping: identical stack traces matched by
/// template-stripped function names.
pub fn folded_function_groups(graph: &ExecGraph, benefit: &BenefitReport) -> Vec<ProblemGroup> {
    let mut scratch = GroupScratch::new();
    scratch.compute_folded_function(graph, benefit);
    scratch.materialize_folded_function(graph)
}

/// Fold on the API function itself (the Fig. 7 overview rows:
/// "Fold on cudaFree").
pub fn fold_on_api(graph: &ExecGraph, benefit: &BenefitReport) -> Vec<ProblemGroup> {
    let mut scratch = GroupScratch::new();
    scratch.compute_api_fold(graph, benefit);
    scratch.materialize_api_fold(graph)
}

/// One entry of a sequence listing (paper Fig. 6).
#[derive(Debug, Clone)]
pub struct SeqEntry {
    /// 1-based position in the sequence display.
    pub index: usize,
    /// Graph node index.
    pub node: usize,
    pub api: Option<ApiFn>,
    pub site: Option<SourceLoc>,
    pub problem: Problem,
}

/// A contiguous run of problematic operations.
#[derive(Debug, Clone)]
pub struct Sequence {
    /// First graph node of the run (a problematic node).
    pub start: usize,
    /// Exclusive end: index of the terminating necessary synchronization
    /// (or `nodes.len()` when the run reaches the end of the program).
    pub end: usize,
    /// The problematic operations, in order.
    pub entries: Vec<SeqEntry>,
    /// Carry-forward benefit estimate for fixing the whole run.
    pub benefit_ns: Ns,
}

impl Sequence {
    pub fn sync_issues(&self) -> usize {
        self.entries.iter().filter(|e| e.problem.is_sync()).count()
    }

    pub fn transfer_issues(&self) -> usize {
        self.entries.iter().filter(|e| e.problem == Problem::UnnecessaryTransfer).count()
    }
}

/// Evaluate the carry-forward estimator over nodes `[start, end)`.
///
/// Each removed synchronization's duration first tries to be absorbed by
/// the CPU work between it and the next synchronization; what cannot be
/// absorbed is *carried forward* to later windows instead of being dumped
/// into the next synchronization (the small modification to
/// `RemoveSyncronization` described in §3.5.2). Transfers contribute
/// their full CPU cost. Returns the total estimate.
pub fn carry_forward_benefit(graph: &ExecGraph, start: usize, end: usize) -> Ns {
    carry_forward_indexed(graph, &graph.index(), start, end)
}

/// [`carry_forward_benefit`] against a prebuilt [`GraphIndex`], so
/// evaluating many windows of one immutable graph (sequence discovery,
/// subsequence refinement sweeps) pays the O(n) index build once and
/// each window O(entries) instead of O(n) rescans. The estimator only
/// *reads* durations — unlike the Fig. 5 growth model — which is what
/// makes the cached index sound here.
pub fn carry_forward_indexed(graph: &ExecGraph, ix: &GraphIndex, start: usize, end: usize) -> Ns {
    carry_forward_masked(graph, ix, start, end, |_| true)
}

/// [`carry_forward_indexed`] with a node-mask predicate: nodes for which
/// `mask` returns `false` are treated as unproblematic (`Problem::None`)
/// without mutating or cloning the graph.
///
/// This is exactly equivalent to cloning the graph and clearing the
/// masked nodes' classifications — the window structure
/// (`next_sync_after`, `cpu_time_between`) depends only on node types
/// and durations, which a problem mask never changes — but it keeps
/// Fig. 8-style subsequence refinement sweeps allocation-free.
pub fn carry_forward_masked(
    graph: &ExecGraph,
    ix: &GraphIndex,
    start: usize,
    end: usize,
    mask: impl Fn(usize) -> bool,
) -> Ns {
    let mut total: Ns = 0;
    let mut carry: Ns = 0;
    for idx in start..end.min(graph.nodes.len()) {
        let node = &graph.nodes[idx];
        let problem = if mask(idx) { node.problem } else { Problem::None };
        match problem {
            Problem::UnnecessarySync => {
                let window_end = ix.next_sync_after(idx).unwrap_or(graph.nodes.len());
                let avail = ix.cpu_time_between(idx, window_end);
                let demand = node.duration + carry;
                let est = avail.min(demand);
                total += est;
                carry = demand - est;
            }
            Problem::MisplacedSync => {
                let est = node.first_use_ns.unwrap_or(0).min(node.duration + carry);
                total += est;
                carry = (node.duration + carry).saturating_sub(est);
            }
            Problem::UnnecessaryTransfer => {
                total += node.duration;
            }
            Problem::None => {}
        }
    }
    total
}

/// Is this node a *necessary* synchronization that terminates a run?
/// (A `CWait` with no problem, or a misplaced one — it must still
/// happen.)
fn is_terminator(n: &crate::graph::Node) -> bool {
    n.ntype == NType::CWait && matches!(n.problem, Problem::None | Problem::MisplacedSync)
}

/// Does this node start a run? Every problem except `MisplacedSync`
/// qualifies (a misplaced sync is still necessary, so it cannot open a
/// removable run — it can only appear inside one).
fn is_starter(n: &crate::graph::Node) -> bool {
    !matches!(n.problem, Problem::None | Problem::MisplacedSync)
}

/// Block size for the chunked terminator scan. Big enough that per-task
/// dispatch cost is noise against scanning the block, small enough that
/// a multi-million-node graph splits into plenty of tasks.
const SCAN_CHUNK: usize = 8192;

/// Enumerate candidate runs `(start, end)`: terminators split the node
/// array into segments, and each segment containing at least one
/// starter yields exactly one maximal run — from its first starter to
/// the terminator (exclusive) or the end of the program.
///
/// This is the sharded reformulation of the old single-pass scan (and
/// provably equivalent to it: the old scan skipped non-starters, opened
/// a run at the first starter, extended it to the next terminator, then
/// resumed *at* that terminator — i.e. one run per terminator-delimited
/// segment). Both the terminator scan and the per-segment starter
/// search are embarrassingly parallel reads of the immutable graph, so
/// both shard over the pool; results are concatenated in index order,
/// making the run list byte-identical at every `jobs` value.
fn candidate_runs(graph: &ExecGraph, jobs: usize) -> Vec<(usize, usize)> {
    let n = graph.nodes.len();

    // Shard 1: find every terminator index, in order.
    let terminators: Vec<usize> = if jobs > 1 && n >= 2 * SCAN_CHUNK {
        let chunks: Vec<usize> = (0..n.div_ceil(SCAN_CHUNK)).collect();
        par_map(chunks, jobs, |c| {
            let lo = c * SCAN_CHUNK;
            let hi = (lo + SCAN_CHUNK).min(n);
            (lo..hi).filter(|&i| is_terminator(&graph.nodes[i])).collect::<Vec<usize>>()
        })
        .into_iter()
        .flatten()
        .collect()
    } else {
        (0..n).filter(|&i| is_terminator(&graph.nodes[i])).collect()
    };

    // Segments between terminators (terminators themselves excluded).
    let mut segments: Vec<(usize, usize)> = Vec::with_capacity(terminators.len() + 1);
    let mut lo = 0;
    for &t in &terminators {
        if t > lo {
            segments.push((lo, t));
        }
        lo = t + 1;
    }
    if lo < n {
        segments.push((lo, n));
    }

    // Shard 2: first starter per segment. Dispatch overhead dwarfs the
    // scan for a handful of segments; only fan out with real work.
    let seg_jobs = if segments.len() >= 64 { jobs } else { 1 };
    par_map(segments, seg_jobs, |(s_lo, s_hi): (usize, usize)| {
        (s_lo..s_hi).find(|&i| is_starter(&graph.nodes[i])).map(|start| (start, s_hi))
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Find maximal sequences: runs beginning at a problematic node and
/// ending at the first *necessary* synchronization (a `CWait` with no
/// problem, or a misplaced one — it must still happen).
///
/// `jobs` is the *resolved* worker budget handed down from the pipeline
/// configuration (`FfmConfig::jobs` via `effective_jobs`): both the
/// candidate-window enumeration ([`candidate_runs`]) and sequence
/// scoring fan out on the shared pool only when the caller granted more
/// than one worker, so `jobs = 1` runs plain sequential loops and
/// spawns nothing — grouping no longer consults the environment behind
/// the configuration's back.
pub fn find_sequences(graph: &ExecGraph, jobs: usize) -> Vec<Sequence> {
    let _span = crate::telemetry::span("find_sequences");
    // Pass 1: discover the maximal runs (sharded over the pool).
    let runs = candidate_runs(graph, jobs.max(1));

    // Pass 2: evaluate every run against one shared index. Runs are
    // independent reads of the immutable graph, so the fleet fans out
    // over `par_map` (order-preserving) when the environment grants more
    // than one worker; jobs=1 is the plain sequential loop.
    let ix = graph.index();
    let evaluate = |(start, end): (usize, usize)| -> Option<Sequence> {
        let entries: Vec<SeqEntry> = (start..end)
            .filter(|&i| graph.nodes[i].problem != Problem::None)
            .enumerate()
            .map(|(k, i)| SeqEntry {
                index: k + 1,
                node: i,
                api: graph.nodes[i].api,
                site: graph.nodes[i].site,
                problem: graph.nodes[i].problem,
            })
            .collect();
        if entries.len() > 1 {
            let benefit_ns = carry_forward_indexed(graph, &ix, start, end);
            Some(Sequence { start, end, entries, benefit_ns })
        } else {
            None
        }
    };
    // Dispatch overhead dwarfs per-run evaluation on small graphs; only
    // fan out when there is real work to split.
    crate::telemetry::counter_add("grouping.candidate_runs", runs.len() as u64);
    let jobs = if runs.len() >= 64 { jobs.max(1) } else { 1 };
    let mut sequences: Vec<Sequence> =
        par_map(runs, jobs, evaluate).into_iter().flatten().collect();

    // Stable sort: ties keep discovery (graph) order regardless of jobs.
    sequences.sort_by_key(|s| std::cmp::Reverse(s.benefit_ns));
    sequences
}

/// Refined estimate for a user-selected subsequence (paper Fig. 8):
/// evaluate the carry-forward estimator over only entries
/// `[from_entry, to_entry]` (1-based, inclusive) of `seq`.
///
/// No additional data collection is needed — exactly as in the paper,
/// this re-evaluates the already-built graph.
pub fn subsequence_benefit(
    graph: &ExecGraph,
    seq: &Sequence,
    from_entry: usize,
    to_entry: usize,
) -> Option<Ns> {
    subsequence_benefit_indexed(graph, &graph.index(), seq, from_entry, to_entry)
}

/// [`subsequence_benefit`] against a prebuilt [`GraphIndex`], so a
/// refinement sweep over many candidate ranges (the automated
/// subsequence search) pays the index build once and never clones the
/// graph: problems outside the chosen entries are suppressed with a
/// node-mask predicate in the estimator instead.
///
/// Allocation-free: entry nodes are strictly increasing (sequences are
/// built by a forward scan), so chosen-set membership is a binary search
/// over the entry list rather than a per-call hash set.
pub fn subsequence_benefit_indexed(
    graph: &ExecGraph,
    ix: &GraphIndex,
    seq: &Sequence,
    from_entry: usize,
    to_entry: usize,
) -> Option<Ns> {
    let first = seq.entries.iter().find(|e| e.index == from_entry)?;
    let last = seq.entries.iter().find(|e| e.index == to_entry)?;
    if last.node < first.node {
        return None;
    }
    // Only the chosen entries count; every other problem in the window is
    // masked out. The evaluation window extends to the sequence's
    // terminating sync so the final entry's removal can still be absorbed
    // by trailing work.
    let chosen = |node: usize| {
        seq.entries
            .binary_search_by_key(&node, |e| e.node)
            .map(|p| {
                let e = &seq.entries[p];
                e.index >= from_entry && e.index <= to_entry
            })
            .unwrap_or(false)
    };
    Some(carry_forward_masked(graph, ix, first.node, seq.end, chosen))
}

/// Estimated savings per API function (used for the Table 2 comparison),
/// accumulated in a flat `ApiFn::COUNT`-sized table instead of a hash
/// map. Returns the APIs that had at least one problematic instance, in
/// dense API-index order (callers wanting benefit order sort the small
/// result themselves, as [`crate::analyze`] does).
pub fn savings_by_api(graph: &ExecGraph, benefit: &BenefitReport) -> Vec<(ApiFn, Ns)> {
    let mut table: [(Option<ApiFn>, Ns); ApiFn::COUNT] = [(None, 0); ApiFn::COUNT];
    for nb in &benefit.per_node {
        if let Some(api) = graph.nodes[nb.node].api {
            let slot = &mut table[api.index()];
            slot.0 = Some(api);
            slot.1 += nb.benefit_ns;
        }
    }
    table.into_iter().filter_map(|(api, ns)| api.map(|a| (a, ns))).collect()
}

/// Per-window statistics returned by [`IncrementalAnalysis::fold`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Graph nodes appended in this window.
    pub nodes: usize,
    /// Benefit entries that became resolvable in this window.
    pub resolved: usize,
    /// Distinct single-point groups that received entries this window
    /// (from the windowed member-delta rebuild).
    pub groups_touched: usize,
}

/// Evaluate the carry-forward estimator over `[start, end)` against the
/// incremental CPU prefix column, scanning for each sync's window end
/// among the first `limit` appended nodes. Semantics mirror
/// [`carry_forward_masked`] with an all-true mask: for closed runs the
/// window ends exist at or before the terminating sync, so the value
/// computed at close time equals the batch value on the final graph.
fn carry_forward_prefix(
    graph: &ExecGraph,
    cpu_prefix: &[Ns],
    start: usize,
    end: usize,
    limit: usize,
) -> Ns {
    let mut total: Ns = 0;
    let mut carry: Ns = 0;
    let mut scan = start;
    for idx in start..end {
        let node = &graph.nodes[idx];
        match node.problem {
            Problem::UnnecessarySync => {
                if scan <= idx {
                    scan = idx + 1;
                }
                while scan < limit && graph.nodes[scan].ntype != NType::CWait {
                    scan += 1;
                }
                let window_end = scan.min(limit);
                let avail = crate::graph::prefix_cpu_time_between(cpu_prefix, idx, window_end);
                let demand = node.duration + carry;
                let est = avail.min(demand);
                total += est;
                carry = demand - est;
            }
            Problem::MisplacedSync => {
                let est = node.first_use_ns.unwrap_or(0).min(node.duration + carry);
                total += est;
                carry = (node.duration + carry).saturating_sub(est);
            }
            Problem::UnnecessaryTransfer => {
                total += node.duration;
            }
            Problem::None => {}
        }
    }
    total
}

/// One candidate run discovered by the incremental sequence tracker.
#[derive(Debug, Clone, Copy)]
struct RunState {
    start: usize,
    /// Exclusive end (the terminator index, or pending for the open run).
    end: usize,
    /// Problem entries in `[start, end)`.
    entries: usize,
    /// Carry-forward estimate, computed at close time (only when
    /// `entries > 1`; runs below the display threshold keep 0).
    benefit_ns: Ns,
}

/// The streaming counterpart of [`crate::analyze`]: an append-only
/// state machine that folds each window of freshly appended (and
/// already classified) graph nodes into running benefit estimates,
/// problem groups and sequence runs.
///
/// The contract that makes it trustworthy: **the final state is
/// byte-identical to the batch answer**. Every constituent is either
/// resolved in graph order with the exact batch semantics (benefit via
/// [`BenefitFold`], groups via [`GroupScratch`] absorption in the same
/// entry order, runs closed at the same terminators with the same
/// carry-forward arithmetic) or assembled at [`IncrementalAnalysis::
/// finish`] with the same sorts the batch path uses. Intermediate
/// [`IncrementalAnalysis::snapshot`]s equal the batch analysis of the
/// graph prefix seen so far (pending entries are overlaid
/// non-destructively). The per-window fold itself performs zero
/// steady-state allocations; snapshots allocate (they materialize an
/// owned [`Analysis`]).
#[derive(Debug)]
pub struct IncrementalAnalysis {
    cfg: AnalysisConfig,
    /// Growing CPU prefix column (`len == nodes folded + 1`).
    cpu_prefix: Vec<Ns>,
    /// Sum of all folded node durations.
    total_duration: Ns,
    fold: BenefitFold,
    /// Benefit entries already absorbed into the group tables.
    absorbed: usize,
    /// Running group tables (single point by instance signature, per-API
    /// fold), fed in resolution order.
    sp: GroupScratch,
    af: GroupScratch,
    /// Closed candidate runs, in discovery order.
    runs: Vec<RunState>,
    open_start: Option<usize>,
    open_entries: usize,
    /// Windowed member-delta table over the single-point pairs.
    window_members: Csr,
    window_remap: RowRemap,
    window_pairs_from: usize,
    // Snapshot scratch, reused across epochs.
    snap_per_node: Vec<NodeBenefit>,
    snap_overlay: Vec<Ns>,
    snap_sp: GroupScratch,
    snap_af: GroupScratch,
}

impl IncrementalAnalysis {
    pub fn new(cfg: &AnalysisConfig) -> IncrementalAnalysis {
        IncrementalAnalysis {
            cfg: cfg.clone(),
            cpu_prefix: vec![0],
            total_duration: 0,
            fold: BenefitFold::new(),
            absorbed: 0,
            sp: GroupScratch::new(),
            af: GroupScratch::new(),
            runs: Vec::new(),
            open_start: None,
            open_entries: 0,
            window_members: Csr::new(),
            window_remap: RowRemap::new(),
            window_pairs_from: 0,
            snap_per_node: Vec::new(),
            snap_overlay: Vec::new(),
            snap_sp: GroupScratch::new(),
            snap_af: GroupScratch::new(),
        }
    }

    /// Clear all state (keeping buffer capacity) for a fresh graph.
    pub fn reset(&mut self) {
        self.cpu_prefix.clear();
        self.cpu_prefix.push(0);
        self.total_duration = 0;
        self.fold.reset();
        self.absorbed = 0;
        self.sp.begin();
        self.af.begin();
        self.runs.clear();
        self.open_start = None;
        self.open_entries = 0;
        self.window_pairs_from = 0;
    }

    /// Number of graph nodes folded so far.
    pub fn folded_nodes(&self) -> usize {
        self.cpu_prefix.len() - 1
    }

    /// Fold every node appended to `graph` since the last call. Nodes
    /// must already carry their problem classification
    /// ([`crate::problem::classify_range`] over the appended range).
    pub fn fold(&mut self, graph: &ExecGraph) -> WindowStats {
        let n = graph.nodes.len();
        let from = self.folded_nodes();
        debug_assert!(from <= n, "graph shrank between folds");
        for idx in from..n {
            let node = &graph.nodes[idx];
            let cpu = matches!(node.ntype, NType::CWork | NType::CLaunch);
            let last = *self.cpu_prefix.last().unwrap();
            self.cpu_prefix.push(last + if cpu { node.duration } else { 0 });
            self.total_duration += node.duration;
            if is_terminator(node) {
                if let Some(start) = self.open_start.take() {
                    let entries = self.open_entries;
                    self.open_entries = 0;
                    let benefit_ns = if entries > 1 {
                        carry_forward_prefix(graph, &self.cpu_prefix, start, idx, idx + 1)
                    } else {
                        0
                    };
                    self.runs.push(RunState { start, end: idx, entries, benefit_ns });
                }
            } else if node.problem != Problem::None {
                if self.open_start.is_none() && is_starter(node) {
                    self.open_start = Some(idx);
                }
                if self.open_start.is_some() {
                    self.open_entries += 1;
                }
            }
        }
        self.fold.extend(graph, &self.cpu_prefix, &self.cfg.benefit);
        let resolved = &self.fold.per_node()[self.absorbed..];
        let resolved_count = resolved.len();
        self.sp.absorb(resolved, |i| graph.nodes[i].instance.map(|inst| inst.sig));
        self.af.absorb(resolved, |i| graph.nodes[i].api.map(|a| a.index() as u64));
        self.absorbed = self.fold.per_node().len();
        // Windowed delta rebuild: member table over only this window's
        // single-point pairs — O(window), not O(history).
        let pairs = self.sp.pairs();
        self.window_members
            .rebuild_from_pairs_windowed(&pairs[self.window_pairs_from..], &mut self.window_remap);
        self.window_pairs_from = pairs.len();
        WindowStats {
            nodes: n - from,
            resolved: resolved_count,
            groups_touched: self.window_remap.rows().len(),
        }
    }

    /// Member-delta table from the last fold: row `r` lists the nodes
    /// absorbed this window into the group `window_rows()[r]`.
    pub fn window_members(&self) -> &Csr {
        &self.window_members
    }

    /// Global single-point group ids touched by the last fold, parallel
    /// to [`IncrementalAnalysis::window_members`] rows.
    pub fn window_rows(&self) -> &[u32] {
        self.window_remap.rows()
    }

    /// Materialize the analysis of everything folded so far, as if the
    /// trace ended here — equal to running the batch [`crate::analyze`]
    /// assembly over the current graph prefix. Non-destructive: pending
    /// benefit entries are evaluated into snapshot scratch and the
    /// running state is untouched, so folding can continue afterwards.
    pub fn snapshot(&mut self, graph: &ExecGraph, baseline_exec_ns: Ns) -> Analysis {
        debug_assert_eq!(graph.nodes.len(), self.folded_nodes(), "snapshot mid-append");
        let (benefit, problems, single_point, api_folds, sequences, by_api) = self.assemble(graph);
        Analysis {
            graph: graph.clone(),
            benefit,
            problems,
            single_point,
            api_folds,
            sequences,
            by_api,
            baseline_exec_ns,
        }
    }

    /// Resolve everything pending under end-of-trace semantics and
    /// materialize the final analysis. The result is structurally
    /// identical to [`crate::analyze`] over the same classified graph —
    /// the identity `streaming_identity` pins at the report-byte level.
    pub fn finish(mut self, graph: ExecGraph, baseline_exec_ns: Ns) -> Analysis {
        debug_assert_eq!(graph.nodes.len(), self.folded_nodes(), "finish before final fold");
        self.fold.finalize(&graph, &self.cpu_prefix, &self.cfg.benefit);
        let resolved = &self.fold.per_node()[self.absorbed..];
        self.sp.absorb(resolved, |i| graph.nodes[i].instance.map(|inst| inst.sig));
        self.af.absorb(resolved, |i| graph.nodes[i].api.map(|a| a.index() as u64));
        self.absorbed = self.fold.per_node().len();
        let candidate_runs = self.runs.len() + usize::from(self.open_start.is_some());
        crate::telemetry::counter_add("grouping.candidate_runs", candidate_runs as u64);
        let (benefit, problems, single_point, api_folds, sequences, by_api) = self.assemble(&graph);
        Analysis {
            graph,
            benefit,
            problems,
            single_point,
            api_folds,
            sequences,
            by_api,
            baseline_exec_ns,
        }
    }

    /// Shared assembly for snapshots and the final analysis: overlay
    /// pending benefit entries, rebuild the presentation tables, and
    /// materialize owned results with the exact batch sorts.
    #[allow(clippy::type_complexity)]
    fn assemble(
        &mut self,
        graph: &ExecGraph,
    ) -> (
        BenefitReport,
        Vec<ProblemOp>,
        Vec<ProblemGroup>,
        Vec<ProblemGroup>,
        Vec<Sequence>,
        Vec<(ApiFn, Ns)>,
    ) {
        let n = graph.nodes.len();
        // Benefit: resolved entries + pending overlay.
        self.snap_per_node.clear();
        self.snap_per_node.extend_from_slice(self.fold.per_node());
        let tail = self.fold.complete_into(
            graph,
            &self.cpu_prefix,
            &self.cfg.benefit,
            &mut self.snap_per_node,
            &mut self.snap_overlay,
        );
        let benefit = BenefitReport {
            per_node: self.snap_per_node.clone(),
            total_ns: self.fold.total_ns() + tail.total_ns,
            predicted_exec_ns: self.total_duration + self.fold.growth_ns() + tail.growth_ns
                - self.fold.reclaim_ns()
                - tail.reclaim_ns,
        };
        // Problems, sorted by descending benefit (stable, as in analyze).
        let mut problems: Vec<ProblemOp> = benefit
            .per_node
            .iter()
            .map(|nb| {
                let node = &graph.nodes[nb.node];
                ProblemOp {
                    node: nb.node,
                    api: node.api,
                    site: node.site,
                    problem: nb.problem,
                    benefit_ns: nb.benefit_ns,
                }
            })
            .collect();
        problems.sort_by_key(|p| std::cmp::Reverse(p.benefit_ns));
        // Groups: running tables + pending overlay, sealed in snapshot
        // scratch so the incremental tables stay undisturbed.
        let pending = &self.snap_per_node[self.fold.per_node().len()..];
        self.snap_sp.copy_from(&self.sp);
        self.snap_sp.absorb(pending, |i| graph.nodes[i].instance.map(|inst| inst.sig));
        self.snap_sp.seal();
        let single_point = self.snap_sp.materialize_single_point(graph);
        self.snap_af.copy_from(&self.af);
        self.snap_af.absorb(pending, |i| graph.nodes[i].api.map(|a| a.index() as u64));
        self.snap_af.seal();
        let api_folds = self.snap_af.materialize_api_fold(graph);
        // Sequences: closed runs plus the still-open run under
        // end-of-trace semantics.
        let materialize_entries = |start: usize, end: usize| -> Vec<SeqEntry> {
            (start..end)
                .filter(|&i| graph.nodes[i].problem != Problem::None)
                .enumerate()
                .map(|(k, i)| SeqEntry {
                    index: k + 1,
                    node: i,
                    api: graph.nodes[i].api,
                    site: graph.nodes[i].site,
                    problem: graph.nodes[i].problem,
                })
                .collect()
        };
        let mut sequences: Vec<Sequence> = Vec::new();
        for run in &self.runs {
            if run.entries > 1 {
                sequences.push(Sequence {
                    start: run.start,
                    end: run.end,
                    entries: materialize_entries(run.start, run.end),
                    benefit_ns: run.benefit_ns,
                });
            }
        }
        if let Some(start) = self.open_start {
            if self.open_entries > 1 {
                let benefit_ns = carry_forward_prefix(graph, &self.cpu_prefix, start, n, n);
                sequences.push(Sequence {
                    start,
                    end: n,
                    entries: materialize_entries(start, n),
                    benefit_ns,
                });
            }
        }
        sequences.sort_by_key(|s| std::cmp::Reverse(s.benefit_ns));
        // Savings by API, in the batch presentation order.
        let mut table: [(Option<ApiFn>, Ns); ApiFn::COUNT] = [(None, 0); ApiFn::COUNT];
        for nb in &benefit.per_node {
            if let Some(api) = graph.nodes[nb.node].api {
                let slot = &mut table[api.index()];
                slot.0 = Some(api);
                slot.1 += nb.benefit_ns;
            }
        }
        let mut by_api: Vec<(ApiFn, Ns)> =
            table.into_iter().filter_map(|(api, ns)| api.map(|a| (a, ns))).collect();
        by_api.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        (benefit, problems, single_point, api_folds, sequences, by_api)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benefit::{expected_benefit, BenefitOptions};
    use crate::graph::Node;
    use crate::records::OpInstance;

    fn node(
        ntype: NType,
        duration: Ns,
        problem: Problem,
        sig: u64,
        occ: u64,
        api: ApiFn,
        line: u32,
    ) -> Node {
        Node {
            ntype,
            stime: 0,
            duration,
            problem,
            first_use_ns: None,
            call_seq: None,
            instance: Some(OpInstance { sig, occ }),
            folded_sig: Some(sig % 10), // fold pairs of sigs together
            api: Some(api),
            site: Some(SourceLoc::new("als.cpp", line)),
            is_transfer: problem == Problem::UnnecessaryTransfer,
        }
    }

    fn sample_graph() -> ExecGraph {
        use NType::*;
        use Problem::*;
        // loop iteration pattern: [free WAIT][work][free WAIT][work][necessary sync]
        let nodes = vec![
            node(CWait, 10, UnnecessarySync, 11, 0, ApiFn::CudaFree, 856),
            node(CWork, 4, None, 0, 0, ApiFn::CudaMalloc, 1),
            node(CWait, 10, UnnecessarySync, 11, 1, ApiFn::CudaFree, 856),
            node(CWork, 4, None, 0, 1, ApiFn::CudaMalloc, 1),
            node(CLaunch, 6, UnnecessaryTransfer, 21, 0, ApiFn::CudaMemcpy, 738),
            node(CWait, 8, None, 31, 0, ApiFn::CudaDeviceSynchronize, 900),
            node(CWork, 50, None, 0, 2, ApiFn::CudaMalloc, 1),
        ];
        let exec = nodes.iter().map(|n| n.duration).sum();
        ExecGraph { nodes, exec_time_ns: exec, baseline_exec_ns: exec }
    }

    #[test]
    fn single_point_groups_merge_same_site() {
        let g = sample_graph();
        let b = expected_benefit(&g, &BenefitOptions::default());
        let groups = single_point_groups(&g, &b);
        let free = groups.iter().find(|gr| gr.label.resolve().contains("cudaFree")).unwrap();
        assert_eq!(free.nodes.len(), 2, "both cudaFree instances in one group");
        assert_eq!(free.sync_issues, 2);
        assert!(free.label.resolve().contains("als.cpp at line 856"));
    }

    #[test]
    fn groups_are_sorted_by_benefit() {
        let g = sample_graph();
        let b = expected_benefit(&g, &BenefitOptions::default());
        let groups = single_point_groups(&g, &b);
        for w in groups.windows(2) {
            assert!(w[0].benefit_ns >= w[1].benefit_ns);
        }
    }

    #[test]
    fn fold_on_api_merges_across_sites() {
        let g = sample_graph();
        let b = expected_benefit(&g, &BenefitOptions::default());
        let folds = fold_on_api(&g, &b);
        let free = folds.iter().find(|f| f.label.resolve() == "Fold on cudaFree").unwrap();
        assert_eq!(free.nodes.len(), 2);
        let memcpy = folds.iter().find(|f| f.label.resolve() == "Fold on cudaMemcpy").unwrap();
        assert_eq!(memcpy.transfer_issues, 1);
    }

    #[test]
    fn sequence_spans_until_necessary_sync() {
        let g = sample_graph();
        let seqs = find_sequences(&g, 1);
        assert_eq!(seqs.len(), 1);
        let s = &seqs[0];
        assert_eq!(s.entries.len(), 3, "2 syncs + 1 transfer");
        assert_eq!(s.sync_issues(), 2);
        assert_eq!(s.transfer_issues(), 1);
        // Ends at the necessary cudaDeviceSynchronize (node 5).
        assert_eq!(s.end, 5);
        assert_eq!(s.entries[0].index, 1);
    }

    #[test]
    fn carry_forward_beats_pairwise_pessimism() {
        use NType::*;
        use Problem::*;
        // One big unnecessary sync whose window is small, followed by a
        // second window with lots of CPU work: carry-forward recovers in
        // the later window what the first could not absorb.
        let nodes = vec![
            node(CWait, 20, UnnecessarySync, 1, 0, ApiFn::CudaFree, 1),
            node(CWork, 2, None, 0, 0, ApiFn::CudaMalloc, 2),
            node(CWait, 1, UnnecessarySync, 2, 0, ApiFn::CudaFree, 3),
            node(CWork, 30, None, 0, 1, ApiFn::CudaMalloc, 4),
            node(CWait, 5, None, 3, 0, ApiFn::CudaDeviceSynchronize, 5),
        ];
        let exec = nodes.iter().map(|n| n.duration).sum();
        let g = ExecGraph { nodes, exec_time_ns: exec, baseline_exec_ns: exec };
        // Plain Fig.5: first sync recovers only 2 (window), second 1+... the
        // growth model dumps 18 into the second sync, then window 30
        // absorbs min(30, 1+18)=19. Pairwise total = 2+19=21.
        let plain = expected_benefit(&g, &BenefitOptions::default());
        // Carry-forward: window1 absorbs 2, carry 18; window2 absorbs
        // min(30, 1+18)=19 ⇒ total 21. Equivalent here...
        let seq = carry_forward_benefit(&g, 0, 4);
        assert_eq!(seq, 21);
        assert_eq!(plain.total_ns, 21);
    }

    #[test]
    fn carry_forward_does_not_exceed_total_waits_plus_transfers() {
        let g = sample_graph();
        let seqs = find_sequences(&g, 1);
        let s = &seqs[0];
        let max: Ns = s.entries.iter().map(|e| g.nodes[e.node].duration).sum();
        assert!(s.benefit_ns <= max);
        assert!(s.benefit_ns > 0);
    }

    #[test]
    fn subsequence_estimates_subset() {
        let g = sample_graph();
        let seqs = find_sequences(&g, 1);
        let s = &seqs[0];
        let full = s.benefit_ns;
        let sub = subsequence_benefit(&g, s, 2, 3).unwrap();
        assert!(sub <= full);
        assert!(sub > 0);
        // Degenerate request
        assert!(subsequence_benefit(&g, s, 9, 10).is_none());
    }

    /// Regression pin for the mask-predicate refinement path. The exact
    /// values were originally cross-checked against the retired
    /// clone-the-graph-and-clear-problems reference implementation; they
    /// are pinned here so the binary-search membership logic cannot
    /// drift.
    #[test]
    fn masked_subsequence_matches_pinned_reference_values() {
        let g = sample_graph();
        let seqs = find_sequences(&g, 1);
        let s = &seqs[0];
        let expect = [
            ((1, 1), 4),  // first sync alone: window absorbs only 4
            ((1, 2), 14), // carry from sync 1 absorbed in sync 2's window
            ((1, 3), 20), // full sequence (equals s.benefit_ns)
            ((2, 2), 10),
            ((2, 3), 16),
            ((3, 3), 6), // the transfer alone
        ];
        for ((from, to), want) in expect {
            assert_eq!(subsequence_benefit(&g, s, from, to), Some(want), "range {from}..={to}");
        }
        assert_eq!(s.benefit_ns, 20);
    }

    /// Differential check of the binary-search membership against an
    /// explicit boolean mask, over scrambled graphs and every range — no
    /// graph clone anywhere.
    #[test]
    fn masked_subsequence_equals_boolean_mask_reference() {
        let g = scrambled_graph(300, 11);
        let ix = g.index();
        for s in find_sequences(&g, 1).iter().take(8) {
            let n = s.entries.len();
            for from in 1..=n {
                for to in from..=n {
                    let masked = subsequence_benefit_indexed(&g, &ix, s, from, to);
                    let mut keep = vec![false; g.nodes.len()];
                    for e in &s.entries {
                        if e.index >= from && e.index <= to {
                            keep[e.node] = true;
                        }
                    }
                    let first = s.entries.iter().find(|e| e.index == from).unwrap();
                    let want = Some(carry_forward_masked(&g, &ix, first.node, s.end, |i| keep[i]));
                    assert_eq!(masked, want, "range {from}..={to}");
                }
            }
        }
    }

    /// Sequence scoring honors the jobs handed down from the pipeline:
    /// results are identical at any worker count (and `jobs = 1` stays on
    /// the caller's thread — covered process-wide by the thread-count
    /// probe in `crates/diogenes/tests`).
    #[test]
    fn find_sequences_is_jobs_invariant() {
        use NType::*;
        use Problem::*;
        // Enough runs (>= 64) that the parallel path actually engages.
        let mut nodes = Vec::new();
        for k in 0..200u64 {
            nodes.push(node(CWait, 10 + k % 7, UnnecessarySync, k, 0, ApiFn::CudaFree, 10));
            nodes.push(node(CLaunch, 6, UnnecessaryTransfer, 1_000 + k, 0, ApiFn::CudaMemcpy, 11));
            nodes.push(node(CWork, 4 + k % 3, None, 0, k, ApiFn::CudaMalloc, 12));
            nodes.push(node(CWait, 8, None, 2_000 + k, 0, ApiFn::CudaDeviceSynchronize, 13));
        }
        let exec = nodes.iter().map(|n| n.duration).sum();
        let g = ExecGraph { nodes, exec_time_ns: exec, baseline_exec_ns: exec };
        let seq = find_sequences(&g, 1);
        assert!(seq.len() >= 64, "graph must exercise the fan-out path");
        for jobs in [2, 4, 16] {
            let par = find_sequences(&g, jobs);
            assert_eq!(seq.len(), par.len(), "jobs={jobs}");
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!((a.start, a.end, a.benefit_ns), (b.start, b.end, b.benefit_ns));
            }
        }
    }

    /// The retired single-pass scan, kept verbatim as the reference
    /// implementation for the sharded enumeration.
    fn reference_runs(graph: &ExecGraph) -> Vec<(usize, usize)> {
        let mut runs: Vec<(usize, usize)> = Vec::new();
        let mut idx = 0;
        let n = graph.nodes.len();
        while idx < n {
            if graph.nodes[idx].problem == Problem::None
                || graph.nodes[idx].problem == Problem::MisplacedSync
            {
                idx += 1;
                continue;
            }
            let start = idx;
            let mut end = idx;
            while end < n {
                let node = &graph.nodes[end];
                let terminates = node.ntype == NType::CWait
                    && matches!(node.problem, Problem::None | Problem::MisplacedSync);
                if terminates {
                    break;
                }
                end += 1;
            }
            runs.push((start, end));
            idx = end.max(idx + 1);
        }
        runs
    }

    /// Deterministic pseudo-random graph: a mix of starters, terminators,
    /// misplaced syncs and plain work in every adjacency pattern.
    fn scrambled_graph(len: usize, seed: u64) -> ExecGraph {
        use NType::*;
        let mut state = seed | 1;
        let mut next = || {
            // xorshift64
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let nodes: Vec<Node> = (0..len)
            .map(|i| {
                let (ntype, problem) = match next() % 6 {
                    0 => (CWait, Problem::UnnecessarySync),
                    1 => (CWait, Problem::None),          // terminator
                    2 => (CWait, Problem::MisplacedSync), // terminator
                    3 => (CLaunch, Problem::UnnecessaryTransfer),
                    4 => (CWork, Problem::None),
                    _ => (CWork, Problem::MisplacedSync), // skip, not a terminator
                };
                node(ntype, 5 + (next() % 20), problem, i as u64, 0, ApiFn::CudaFree, 1)
            })
            .collect();
        let exec = nodes.iter().map(|n| n.duration).sum();
        ExecGraph { nodes, exec_time_ns: exec, baseline_exec_ns: exec }
    }

    /// The sharded enumeration must reproduce the retired sequential
    /// scan exactly, at every job count — including graphs large enough
    /// to cross the chunked-terminator-scan threshold.
    #[test]
    fn candidate_enumeration_matches_reference_scan() {
        for (len, seed) in [(0, 1), (1, 2), (97, 3), (500, 4), (2 * SCAN_CHUNK + 129, 5)] {
            let g = scrambled_graph(len, seed);
            let expect = reference_runs(&g);
            for jobs in [1, 2, 4, 16] {
                assert_eq!(candidate_runs(&g, jobs), expect, "len={len} seed={seed} jobs={jobs}");
            }
        }
    }

    #[test]
    fn find_sequences_jobs_invariant_on_chunked_scan_path() {
        let g = scrambled_graph(2 * SCAN_CHUNK + 777, 9);
        let seq = find_sequences(&g, 1);
        assert!(!seq.is_empty());
        for jobs in [2, 8] {
            let par = find_sequences(&g, jobs);
            assert_eq!(seq.len(), par.len(), "jobs={jobs}");
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!((a.start, a.end, a.benefit_ns), (b.start, b.end, b.benefit_ns));
            }
        }
    }

    #[test]
    fn savings_by_api_sums_member_benefits() {
        let g = sample_graph();
        let b = expected_benefit(&g, &BenefitOptions::default());
        let by_api = savings_by_api(&g, &b);
        let of = |api: ApiFn| by_api.iter().find(|(a, _)| *a == api).map(|(_, ns)| *ns);
        assert!(of(ApiFn::CudaFree).unwrap() > 0);
        assert_eq!(of(ApiFn::CudaMemcpy), Some(6));
        assert_eq!(of(ApiFn::CudaDeviceSynchronize), None);
        // Dense accumulation returns API-index order.
        for w in by_api.windows(2) {
            assert!(w[0].0.index() < w[1].0.index());
        }
    }

    /// The scratch-based grouping views must agree with the materialized
    /// groups (same order, totals, members) and survive reuse across
    /// different grouping passes.
    #[test]
    fn scratch_views_match_materialized_groups() {
        let g = scrambled_graph(500, 21);
        let b = expected_benefit(&g, &BenefitOptions::default());
        let mut scratch = GroupScratch::new();
        for _ in 0..2 {
            // Reuse the same scratch across passes and repetitions.
            scratch.compute_single_point(&g, &b);
            let owned = single_point_groups(&g, &b);
            assert_eq!(scratch.len(), owned.len());
            for (i, grp) in owned.iter().enumerate() {
                let v = scratch.group(i);
                assert_eq!(v.benefit_ns, grp.benefit_ns);
                assert_eq!(v.nodes, &grp.nodes[..]);
                assert_eq!(v.rep_node, grp.nodes[0]);
                assert_eq!(v.sync_issues, grp.sync_issues);
                assert_eq!(v.transfer_issues, grp.transfer_issues);
            }
            scratch.compute_api_fold(&g, &b);
            let folds = fold_on_api(&g, &b);
            assert_eq!(scratch.len(), folds.len());
            for (i, grp) in folds.iter().enumerate() {
                assert_eq!(scratch.group(i).benefit_ns, grp.benefit_ns);
            }
        }
    }

    /// The batch stage-5 assembly over an already-classified graph —
    /// exactly what `analyze` does after classification, kept here as
    /// the reference for the incremental state machine.
    fn batch_analysis(graph: &ExecGraph, jobs: usize) -> Analysis {
        let benefit = expected_benefit(graph, &BenefitOptions::default());
        let mut problems: Vec<ProblemOp> = benefit
            .per_node
            .iter()
            .map(|nb| {
                let n = &graph.nodes[nb.node];
                ProblemOp {
                    node: nb.node,
                    api: n.api,
                    site: n.site,
                    problem: nb.problem,
                    benefit_ns: nb.benefit_ns,
                }
            })
            .collect();
        problems.sort_by_key(|p| std::cmp::Reverse(p.benefit_ns));
        let single_point = single_point_groups(graph, &benefit);
        let api_folds = fold_on_api(graph, &benefit);
        let sequences = find_sequences(graph, jobs);
        let mut by_api = savings_by_api(graph, &benefit);
        by_api.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        Analysis {
            graph: graph.clone(),
            benefit,
            problems,
            single_point,
            api_folds,
            sequences,
            by_api,
            baseline_exec_ns: graph.baseline_exec_ns,
        }
    }

    fn assert_same_analysis(got: &Analysis, want: &Analysis, ctx: &str) {
        assert_eq!(got.benefit.per_node, want.benefit.per_node, "{ctx}: per_node");
        assert_eq!(got.benefit.total_ns, want.benefit.total_ns, "{ctx}: total");
        assert_eq!(
            got.benefit.predicted_exec_ns, want.benefit.predicted_exec_ns,
            "{ctx}: predicted"
        );
        let op = |p: &ProblemOp| (p.node, p.api, p.problem, p.benefit_ns);
        assert_eq!(
            got.problems.iter().map(op).collect::<Vec<_>>(),
            want.problems.iter().map(op).collect::<Vec<_>>(),
            "{ctx}: problems"
        );
        for (which, a, b) in [
            ("single_point", &got.single_point, &want.single_point),
            ("api_folds", &got.api_folds, &want.api_folds),
        ] {
            assert_eq!(a.len(), b.len(), "{ctx}: {which} count");
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.kind, y.kind, "{ctx}: {which} kind");
                assert_eq!(x.label.resolve(), y.label.resolve(), "{ctx}: {which} label");
                assert_eq!(x.benefit_ns, y.benefit_ns, "{ctx}: {which} benefit");
                assert_eq!(x.nodes, y.nodes, "{ctx}: {which} members");
                assert_eq!(x.sync_issues, y.sync_issues, "{ctx}: {which} syncs");
                assert_eq!(x.transfer_issues, y.transfer_issues, "{ctx}: {which} transfers");
            }
        }
        assert_eq!(got.sequences.len(), want.sequences.len(), "{ctx}: sequence count");
        for (x, y) in got.sequences.iter().zip(&want.sequences) {
            assert_eq!(
                (x.start, x.end, x.benefit_ns),
                (y.start, y.end, y.benefit_ns),
                "{ctx}: sequence span"
            );
            let entry = |e: &SeqEntry| (e.index, e.node, e.api, e.problem);
            assert_eq!(
                x.entries.iter().map(entry).collect::<Vec<_>>(),
                y.entries.iter().map(entry).collect::<Vec<_>>(),
                "{ctx}: sequence entries"
            );
        }
        assert_eq!(got.by_api, want.by_api, "{ctx}: by_api");
        assert_eq!(got.baseline_exec_ns, want.baseline_exec_ns, "{ctx}: baseline");
    }

    /// The heart of the streaming refactor: folding any windowing of a
    /// classified graph and finishing must equal the batch assembly
    /// exactly — every field, every order.
    #[test]
    fn incremental_finish_matches_batch_for_any_windowing() {
        for (len, seed) in [(0usize, 1u64), (1, 2), (97, 3), (500, 7), (603, 11)] {
            let full = scrambled_graph(len, seed);
            let want = batch_analysis(&full, 1);
            for window in [1usize, 3, 17, 1000] {
                let mut inc = IncrementalAnalysis::new(&AnalysisConfig::default());
                let mut growing = ExecGraph {
                    nodes: Vec::new(),
                    exec_time_ns: full.exec_time_ns,
                    baseline_exec_ns: full.baseline_exec_ns,
                };
                let mut lo = 0;
                while lo < len {
                    let hi = (lo + window).min(len);
                    growing.nodes.extend(full.nodes[lo..hi].iter().cloned());
                    let stats = inc.fold(&growing);
                    assert_eq!(stats.nodes, hi - lo);
                    assert!(stats.groups_touched <= stats.resolved.max(1));
                    lo = hi;
                }
                if len == 0 {
                    inc.fold(&growing);
                }
                let got = inc.finish(growing, full.baseline_exec_ns);
                assert_same_analysis(&got, &want, &format!("len={len} seed={seed} w={window}"));
            }
        }
    }

    /// Snapshots must equal the batch analysis of the prefix seen so
    /// far — and must not disturb the running state (folding continues
    /// and still converges to the batch answer).
    #[test]
    fn incremental_snapshot_matches_batch_on_every_prefix() {
        let full = scrambled_graph(120, 5);
        for window in [7usize, 31] {
            let mut inc = IncrementalAnalysis::new(&AnalysisConfig::default());
            let mut growing = ExecGraph {
                nodes: Vec::new(),
                exec_time_ns: 0,
                baseline_exec_ns: full.baseline_exec_ns,
            };
            let mut lo = 0;
            while lo < full.nodes.len() {
                let hi = (lo + window).min(full.nodes.len());
                growing.nodes.extend(full.nodes[lo..hi].iter().cloned());
                growing.exec_time_ns = growing.nodes.iter().map(|n| n.duration).sum();
                inc.fold(&growing);
                let snap = inc.snapshot(&growing, growing.baseline_exec_ns);
                let want = batch_analysis(&growing, 1);
                assert_same_analysis(&snap, &want, &format!("prefix={hi} w={window}"));
                lo = hi;
            }
            let want = batch_analysis(&growing, 1);
            let got = inc.finish(growing, want.baseline_exec_ns);
            assert_same_analysis(&got, &want, &format!("final w={window}"));
        }
    }

    /// `reset` must restore a clean state machine on retained buffers.
    #[test]
    fn incremental_reset_reuses_state_cleanly() {
        let g = scrambled_graph(200, 13);
        let want = batch_analysis(&g, 1);
        let mut inc = IncrementalAnalysis::new(&AnalysisConfig::default());
        inc.fold(&g);
        let _ = inc.snapshot(&g, g.baseline_exec_ns);
        inc.reset();
        assert_eq!(inc.folded_nodes(), 0);
        let mut growing = ExecGraph {
            nodes: Vec::new(),
            exec_time_ns: g.exec_time_ns,
            baseline_exec_ns: g.baseline_exec_ns,
        };
        for chunk in g.nodes.chunks(9) {
            growing.nodes.extend(chunk.iter().cloned());
            inc.fold(&growing);
        }
        let got = inc.finish(growing, g.baseline_exec_ns);
        assert_same_analysis(&got, &want, "after reset");
    }
}
