//! Bounded, order-preserving parallelism primitives.
//!
//! The whole measurement pipeline is *embarrassingly re-runnable*: every
//! FFM stage and every application in an experiment fleet builds its own
//! fresh simulator context, so runs share no mutable state and can
//! proceed concurrently. What must **not** change under parallelism is
//! the output: results are returned in input order, so every consumer
//! (tables, JSON exports, report renderers) sees exactly the bytes a
//! sequential run would produce.
//!
//! Built on `std::thread::scope` only — the workspace builds with no
//! external crates.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker count for every fleet-level
/// `par_map` in the repo (`0` or unset = one worker per available core).
pub const JOBS_ENV: &str = "DIOGENES_JOBS";

/// Resolve an effective worker count.
///
/// Precedence: an explicit non-zero `requested` wins; otherwise a
/// non-zero [`JOBS_ENV`] value; otherwise the machine's available
/// parallelism. Always at least 1.
pub fn effective_jobs(requested: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    if let Some(env) = std::env::var(JOBS_ENV).ok().and_then(|v| v.parse::<usize>().ok()) {
        if env != 0 {
            return env;
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Apply `f` to every item, running up to `jobs` applications at once,
/// and return the results **in input order**.
///
/// `jobs <= 1` (after clamping to the item count) degenerates to a plain
/// sequential map on the caller's thread — no threads are spawned, so
/// `jobs = 1` is byte-for-byte the sequential pipeline. Panics in `f`
/// propagate to the caller (the scope join re-raises them).
pub fn par_map<T, U, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Work-stealing by index: items are parked in Option slots, workers
    // claim the next index atomically, and results carry their index so
    // input order survives arbitrary completion order.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(slots.len()));

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("slot claimed once");
                let out = f(item);
                done.lock().unwrap().push((i, out));
            });
        }
    });

    let mut tagged = done.into_inner().unwrap();
    tagged.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(tagged.len(), slots.len());
    tagged.into_iter().map(|(_, u)| u).collect()
}

/// Fallible [`par_map`]: the full fleet still runs to completion, then
/// the first error **in input order** is returned (matching what a
/// sequential `?`-loop would report for an input whose failures do not
/// depend on earlier items — true here, since every run is independent).
pub fn try_par_map<T, U, E, F>(items: Vec<T>, jobs: usize, f: F) -> Result<Vec<U>, E>
where
    T: Send,
    U: Send,
    E: Send,
    F: Fn(T) -> Result<U, E> + Sync,
{
    par_map(items, jobs, f).into_iter().collect()
}

/// Run two independent closures concurrently and return both results.
///
/// Used for stage-level overlap in the pipeline, where the dependency
/// graph is a small static fork, not a homogeneous fleet. With
/// `jobs <= 1` both run sequentially (left first) on the caller's thread.
pub fn join<A, B, FA, FB>(jobs: usize, fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    if jobs <= 1 {
        let a = fa();
        let b = fb();
        return (a, b);
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(fb);
        let a = fa();
        let b = hb.join().expect("joined task panicked");
        (a, b)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_input_order() {
        for jobs in [1, 2, 3, 8, 64] {
            let out = par_map((0..100).collect::<Vec<_>>(), jobs, |x| x * 2);
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..40).collect();
        let seq = par_map(items.clone(), 1, |x| x.wrapping_mul(0x9E37_79B9).rotate_left(7));
        let par = par_map(items, 6, |x| x.wrapping_mul(0x9E37_79B9).rotate_left(7));
        assert_eq!(seq, par);
    }

    #[test]
    fn runs_every_item_exactly_once() {
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        let out = par_map((0..57).collect::<Vec<_>>(), 4, |x| {
            CALLS.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 57);
        assert_eq!(CALLS.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(par_map(Vec::<u8>::new(), 8, |x| x), Vec::<u8>::new());
        assert_eq!(par_map(vec![9], 8, |x| x + 1), vec![10]);
    }

    #[test]
    fn try_par_map_reports_first_error_in_input_order() {
        let items: Vec<u32> = (0..20).collect();
        let r = try_par_map(items, 4, |x| if x % 7 == 3 { Err(x) } else { Ok(x) });
        // Failures at 3, 10, 17; input order means 3 wins regardless of
        // which worker finished first.
        assert_eq!(r, Err(3));
    }

    #[test]
    fn join_returns_both_sides() {
        for jobs in [1, 4] {
            let (a, b) = join(jobs, || 2 + 2, || "ok".to_string());
            assert_eq!((a, b.as_str()), (4, "ok"), "jobs={jobs}");
        }
    }

    #[test]
    fn effective_jobs_precedence() {
        assert_eq!(effective_jobs(3), 3);
        assert!(effective_jobs(0) >= 1);
    }
}
