//! Bounded, order-preserving parallelism primitives over one persistent
//! worker pool.
//!
//! The whole measurement pipeline is *embarrassingly re-runnable*: every
//! FFM stage and every application in an experiment fleet builds its own
//! fresh simulator context, so runs share no mutable state and can
//! proceed concurrently. What must **not** change under parallelism is
//! the output: results are returned in input order, so every consumer
//! (tables, JSON exports, report renderers) sees exactly the bytes a
//! sequential run would produce.
//!
//! ## The pool
//!
//! Earlier revisions spawned fresh `std::thread::scope` threads for
//! every fan-out, which meant a configuration sweep paid thread setup
//! per cell × per stage × per sequence-scoring pass. All fan-out now
//! shares one process-wide [`Pool`]: helper threads are spawned once,
//! lazily, and parked between batches. Nested fan-out (a pool task that
//! itself calls [`par_map`]) is safe and cannot deadlock because every
//! submitter executes its own batch's work too — helpers only *add*
//! concurrency, they are never required for progress.
//!
//! `jobs <= 1` never touches the pool: the work runs inline on the
//! caller's thread, no worker threads are spawned anywhere, and the
//! result is byte-for-byte the sequential pipeline's.
//!
//! Built on `std` only — the workspace builds with no external crates.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

use crate::telemetry;

/// Environment variable overriding the worker count for every fleet-level
/// `par_map` in the repo (`0` or unset = one worker per available core).
pub const JOBS_ENV: &str = "DIOGENES_JOBS";

/// Upper bound on pool helper threads, a guard against absurd `--jobs`
/// requests (the pool grows lazily up to the largest request seen).
const MAX_POOL_HELPERS: usize = 256;

/// Interpret a raw [`JOBS_ENV`] value.
///
/// `Ok(Some(n))` — a positive worker count; `Ok(None)` — unset-equivalent
/// (`0` means "auto", empty/whitespace means "not configured");
/// `Err(())` — malformed (not a base-10 non-negative integer: `abc`,
/// `-2`, `1e3`, …), which callers must treat as unset, loudly.
pub(crate) fn parse_jobs_env(raw: &str) -> Result<Option<usize>, ()> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    match trimmed.parse::<usize>() {
        Ok(0) => Ok(None),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(()),
    }
}

/// Resolve an effective worker count.
///
/// Precedence: an explicit non-zero `requested` wins; otherwise a
/// non-zero [`JOBS_ENV`] value; otherwise the machine's available
/// parallelism. Always at least 1. A malformed [`JOBS_ENV`] value is
/// reported once on stderr and treated as unset instead of silently
/// falling through to the core count.
pub fn effective_jobs(requested: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    if let Ok(raw) = std::env::var(JOBS_ENV) {
        match parse_jobs_env(&raw) {
            Ok(Some(n)) => return n,
            Ok(None) => {}
            Err(()) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    crate::log_warn!(
                        "ignoring malformed {JOBS_ENV}={raw:?} \
                         (expected a non-negative integer); using auto worker count"
                    );
                });
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

// ---------------------------------------------------------------------------
// The batch: one fan-out submitted to the pool.
// ---------------------------------------------------------------------------

/// Type-erased pointer to a submitter's task closure.
///
/// # Safety
///
/// The pointee lives on the submitting thread's stack. [`Pool::submit`]
/// transmutes its lifetime away, which is sound because
/// [`ActiveBatch::finish`] blocks until every claimed index has
/// completed, and no worker dereferences the pointer except for a
/// claimed index `< count` — so every dereference happens while the
/// submitter is still inside `submit`/`finish` and the borrow is live.
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointer is only dereferenced under the protocol described
// on `TaskPtr`; the pointee itself is `Sync`.
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

struct Batch {
    task: TaskPtr,
    /// Number of indexed tasks; indices `0..count` are claimed exactly
    /// once via `next`.
    count: usize,
    next: AtomicUsize,
    /// Helper-thread slots remaining (bounds per-batch concurrency to
    /// the submitter plus `jobs - 1` helpers).
    helper_slots: AtomicUsize,
    /// Completion counter + condvar the submitter sleeps on.
    completed: Mutex<usize>,
    done_cv: Condvar,
    /// First panic payload from any task, re-raised on the submitter.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Request-correlation id captured from the submitting thread, so
    /// helper threads attribute their spans and log lines to the same
    /// request ([`telemetry::trace_scope`]).
    trace: Option<telemetry::TraceId>,
}

impl Batch {
    /// Whether a worker scanning the queue could still find work here.
    fn has_claimable(&self) -> bool {
        self.next.load(Ordering::Relaxed) < self.count
            && self.helper_slots.load(Ordering::Relaxed) > 0
    }

    /// Try to reserve a helper slot (workers only; the submitter always
    /// participates without a slot).
    fn try_join(&self) -> bool {
        self.helper_slots
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| s.checked_sub(1))
            .is_ok()
    }

    /// Claim and run indices until none remain. Runs on the submitter
    /// (`helper = false`) and on any helper that joined the batch
    /// (`helper = true`); the distinction feeds the stolen-vs-self-run
    /// task counters.
    fn run_claimed(&self, helper: bool) {
        // Helpers inherit the submitter's request id for the duration of
        // this batch; the guard restores the helper's previous (usually
        // absent) id when the batch is exhausted. On the submitter this
        // reinstalls the id it already has — harmless.
        let _trace = telemetry::trace_scope(self.trace);
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.count {
                return;
            }
            telemetry::counter_add(
                if helper { "pool.tasks_helper" } else { "pool.tasks_submitter" },
                1,
            );
            // SAFETY: `i < count`, so the submitter is still blocked in
            // `finish` and the closure borrow is live (see `TaskPtr`).
            let task = unsafe { &*self.task.0 };
            let outcome = {
                let _task_span = telemetry::span("pool.task");
                catch_unwind(AssertUnwindSafe(|| task(i)))
            };
            if let Err(payload) = outcome {
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            let mut completed = self.completed.lock().unwrap();
            *completed += 1;
            if *completed == self.count {
                self.done_cv.notify_all();
            }
        }
    }

    fn wait_done(&self) {
        let mut completed = self.completed.lock().unwrap();
        while *completed < self.count {
            completed = self.done_cv.wait(completed).unwrap();
        }
    }
}

// ---------------------------------------------------------------------------
// The pool.
// ---------------------------------------------------------------------------

struct PoolQueue {
    /// Batches with potentially unclaimed work. Submitters push and
    /// remove their own entries; workers only read.
    batches: Vec<Arc<Batch>>,
    /// Helper threads spawned so far.
    workers: usize,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    work_cv: Condvar,
}

/// A persistent pool of helper threads shared by every fan-out in the
/// process: the sweep fleet, the per-application fleet, the pipeline's
/// stage DAG, and sequence scoring all draw from the same bounded set
/// of workers instead of respawning scoped threads per stage.
///
/// Helpers are spawned lazily, grow to the largest concurrency ever
/// requested (capped), and park between batches. The pool preserves the
/// `par_map` contract: results in input order, batches bit-identical to
/// a sequential run, and `jobs <= 1` bypassing the pool entirely.
pub struct Pool {
    shared: Arc<PoolShared>,
}

/// A submitted, not-yet-finished batch. Must be `finish`ed before the
/// task closure it borrows goes out of scope; the only way to obtain one
/// keeps it inside `Pool`'s own methods plus [`Pool::join`]'s frame.
struct ActiveBatch<'p> {
    pool: &'p Pool,
    batch: Arc<Batch>,
}

impl ActiveBatch<'_> {
    /// Participate in the batch until all work is claimed, block until
    /// every claimed task has completed, then re-raise the first task
    /// panic, if any.
    fn finish(self) {
        let batch = Arc::clone(&self.batch);
        drop(self); // run_claimed + wait_done + deregister (Drop impl)
        let payload = batch.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for ActiveBatch<'_> {
    /// The cleanup lives in `drop` (not only in [`ActiveBatch::finish`])
    /// so that a panic on the submitting thread between `submit` and
    /// `finish` still blocks until helpers are out of the task closure —
    /// otherwise unwinding would free a borrow a helper may be reading.
    fn drop(&mut self) {
        self.batch.run_claimed(false);
        self.batch.wait_done();
        let mut q = self.pool.shared.queue.lock().unwrap();
        q.batches.retain(|b| !Arc::ptr_eq(b, &self.batch));
    }
}

impl Pool {
    /// A fresh pool with no helper threads yet (they spawn on demand).
    pub fn new() -> Pool {
        Pool {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(PoolQueue { batches: Vec::new(), workers: 0, shutdown: false }),
                work_cv: Condvar::new(),
            }),
        }
    }

    /// The process-wide pool used by [`par_map`] / [`join`] and thus by
    /// every sweep, fleet and pipeline fan-out in the repo. Created on
    /// first parallel use; never touched by `jobs <= 1` call paths.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(Pool::new)
    }

    /// Helper threads currently alive in this pool.
    pub fn workers(&self) -> usize {
        self.shared.queue.lock().unwrap().workers
    }

    /// Batches currently registered with the pool — fan-outs whose work
    /// may still be in flight. This is the live gauge behind the
    /// `pool.queue_depth` telemetry metric, exposed directly so
    /// `diogenes serve` can report it from `/stats` without telemetry
    /// being enabled.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().unwrap().batches.len()
    }

    fn ensure_workers(&self, want: usize) {
        let want = want.min(MAX_POOL_HELPERS);
        let mut q = self.shared.queue.lock().unwrap();
        while q.workers < want {
            q.workers += 1;
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name(format!("ffm-pool-{}", q.workers))
                .spawn(move || worker_loop(shared))
                .expect("spawn pool worker");
        }
    }

    /// Register a batch of `count` indexed tasks that up to `helpers`
    /// pool threads may help execute. The caller must `finish` the
    /// returned handle before `task` leaves scope.
    fn submit<'p>(
        &'p self,
        count: usize,
        helpers: usize,
        task: &(dyn Fn(usize) + Sync),
    ) -> ActiveBatch<'p> {
        let helpers = helpers.min(count);
        self.ensure_workers(helpers);
        // SAFETY: lifetime erasure per the `TaskPtr` protocol — `finish`
        // (mandatory, same frame) outlives every dereference.
        let task: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(task) };
        let batch = Arc::new(Batch {
            task: TaskPtr(task as *const _),
            count,
            next: AtomicUsize::new(0),
            helper_slots: AtomicUsize::new(helpers),
            completed: Mutex::new(0),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
            trace: telemetry::current_trace(),
        });
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.batches.push(Arc::clone(&batch));
            telemetry::counter_add("pool.batches_submitted", 1);
            telemetry::record("pool.batch_size", count as u64);
            telemetry::record("pool.queue_depth", q.batches.len() as u64);
            self.work_cv_notify();
        }
        ActiveBatch { pool: self, batch }
    }

    fn work_cv_notify(&self) {
        self.shared.work_cv.notify_all();
    }

    /// Apply `f` to every item, running up to `jobs` applications at
    /// once (the caller plus `jobs - 1` pool helpers), returning results
    /// **in input order**. `jobs <= 1` degenerates to a plain sequential
    /// map on the caller's thread without touching the pool.
    pub fn map<T, U, F>(&self, items: Vec<T>, jobs: usize, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        let jobs = jobs.max(1).min(items.len());
        if jobs <= 1 {
            return items.into_iter().map(f).collect();
        }
        // Items are parked in Option slots; workers claim the next index
        // atomically and write the result into the same index, so input
        // order survives arbitrary completion order.
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let out: Vec<Mutex<Option<U>>> = (0..slots.len()).map(|_| Mutex::new(None)).collect();
        let task = |i: usize| {
            let item = slots[i].lock().unwrap().take().expect("slot claimed once");
            *out[i].lock().unwrap() = Some(f(item));
        };
        self.submit(slots.len(), jobs - 1, &task).finish();
        out.into_iter().map(|m| m.into_inner().unwrap().expect("every index completed")).collect()
    }

    /// Run two independent closures concurrently and return both
    /// results. `fa` runs on the caller; `fb` is offered to the pool and
    /// reclaimed by the caller if no helper picked it up. With
    /// `jobs <= 1` both run sequentially (left first) on the caller's
    /// thread and the pool is not touched.
    pub fn join<A, B, FA, FB>(&self, jobs: usize, fa: FA, fb: FB) -> (A, B)
    where
        A: Send,
        B: Send,
        FA: FnOnce() -> A + Send,
        FB: FnOnce() -> B + Send,
    {
        if jobs <= 1 {
            let a = fa();
            let b = fb();
            return (a, b);
        }
        let fb_cell: Mutex<Option<FB>> = Mutex::new(Some(fb));
        let out_b: Mutex<Option<B>> = Mutex::new(None);
        let task = |_i: usize| {
            let fb = fb_cell.lock().unwrap().take().expect("fb runs once");
            *out_b.lock().unwrap() = Some(fb());
        };
        let active = self.submit(1, 1, &task);
        let a = fa();
        active.finish();
        let b = out_b.into_inner().unwrap().expect("fb completed");
        (a, b)
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        let mut q = self.shared.queue.lock().unwrap();
        q.shutdown = true;
        self.shared.work_cv.notify_all();
    }
}

fn worker_loop(shared: Arc<PoolShared>) {
    loop {
        let batch = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if q.shutdown {
                    return;
                }
                // Scan for a batch with unclaimed work and a free helper
                // slot; claim the slot before leaving the lock.
                let joined =
                    q.batches.iter().find(|b| b.has_claimable() && b.try_join()).map(Arc::clone);
                match joined {
                    Some(b) => break b,
                    None => {
                        let parked = telemetry::collecting().then(Instant::now);
                        q = shared.work_cv.wait(q).unwrap();
                        if let Some(t0) = parked {
                            telemetry::counter_add(
                                "pool.worker_idle_ns",
                                t0.elapsed().as_nanos() as u64,
                            );
                        }
                    }
                }
            }
        };
        let running = telemetry::collecting().then(Instant::now);
        batch.run_claimed(true);
        if let Some(t0) = running {
            telemetry::counter_add("pool.worker_busy_ns", t0.elapsed().as_nanos() as u64);
        }
    }
}

// ---------------------------------------------------------------------------
// The thin free-function layer the rest of the repo calls.
// ---------------------------------------------------------------------------

/// Apply `f` to every item, running up to `jobs` applications at once on
/// the process-wide [`Pool`], and return the results **in input order**.
///
/// `jobs <= 1` (after clamping to the item count) degenerates to a plain
/// sequential map on the caller's thread — no threads are spawned and
/// the pool is not touched, so `jobs = 1` is byte-for-byte the
/// sequential pipeline. Panics in `f` propagate to the caller.
pub fn par_map<T, U, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    Pool::global().map(items, jobs, f)
}

/// Fallible [`par_map`]: the full fleet still runs to completion, then
/// the first error **in input order** is returned (matching what a
/// sequential `?`-loop would report for an input whose failures do not
/// depend on earlier items — true here, since every run is independent).
pub fn try_par_map<T, U, E, F>(items: Vec<T>, jobs: usize, f: F) -> Result<Vec<U>, E>
where
    T: Send,
    U: Send,
    E: Send,
    F: Fn(T) -> Result<U, E> + Sync,
{
    par_map(items, jobs, f).into_iter().collect()
}

/// Run two independent closures concurrently on the process-wide
/// [`Pool`] and return both results.
///
/// Used for stage-level overlap in the pipeline, where the dependency
/// graph is a small static fork, not a homogeneous fleet. With
/// `jobs <= 1` both run sequentially (left first) on the caller's thread.
pub fn join<A, B, FA, FB>(jobs: usize, fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    Pool::global().join(jobs, fa, fb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_input_order() {
        for jobs in [1, 2, 3, 8, 64] {
            let out = par_map((0..100).collect::<Vec<_>>(), jobs, |x| x * 2);
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..40).collect();
        let seq = par_map(items.clone(), 1, |x| x.wrapping_mul(0x9E37_79B9).rotate_left(7));
        let par = par_map(items, 6, |x| x.wrapping_mul(0x9E37_79B9).rotate_left(7));
        assert_eq!(seq, par);
    }

    #[test]
    fn runs_every_item_exactly_once() {
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        let out = par_map((0..57).collect::<Vec<_>>(), 4, |x| {
            CALLS.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 57);
        assert_eq!(CALLS.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(par_map(Vec::<u8>::new(), 8, |x| x), Vec::<u8>::new());
        assert_eq!(par_map(vec![9], 8, |x| x + 1), vec![10]);
    }

    #[test]
    fn try_par_map_reports_first_error_in_input_order() {
        let items: Vec<u32> = (0..20).collect();
        let r = try_par_map(items, 4, |x| if x % 7 == 3 { Err(x) } else { Ok(x) });
        // Failures at 3, 10, 17; input order means 3 wins regardless of
        // which worker finished first.
        assert_eq!(r, Err(3));
    }

    #[test]
    fn join_returns_both_sides() {
        for jobs in [1, 4] {
            let (a, b) = join(jobs, || 2 + 2, || "ok".to_string());
            assert_eq!((a, b.as_str()), (4, "ok"), "jobs={jobs}");
        }
    }

    #[test]
    fn effective_jobs_precedence() {
        assert_eq!(effective_jobs(3), 3);
        assert!(effective_jobs(0) >= 1);
    }

    #[test]
    fn jobs_env_parsing_accepts_integers_and_flags_garbage() {
        assert_eq!(parse_jobs_env("4"), Ok(Some(4)));
        assert_eq!(parse_jobs_env(" 12 "), Ok(Some(12)));
        assert_eq!(parse_jobs_env("0"), Ok(None), "0 means auto");
        assert_eq!(parse_jobs_env(""), Ok(None), "empty means unset");
        assert_eq!(parse_jobs_env("   "), Ok(None));
        assert_eq!(parse_jobs_env("abc"), Err(()), "garbage is malformed, not auto");
        assert_eq!(parse_jobs_env("-2"), Err(()), "negative is malformed");
        assert_eq!(parse_jobs_env("1e3"), Err(()), "scientific notation is malformed");
        assert_eq!(parse_jobs_env("4.0"), Err(()));
        assert_eq!(parse_jobs_env("0x10"), Err(()));
    }

    #[test]
    fn queue_depth_reads_zero_when_idle() {
        let pool = Pool::new();
        assert_eq!(pool.queue_depth(), 0);
        pool.map((0..16).collect::<Vec<_>>(), 4, |x| x + 1);
        // Batches deregister when their submitter finishes.
        assert_eq!(pool.queue_depth(), 0);
    }

    #[test]
    fn sequential_path_spawns_no_pool_workers() {
        let pool = Pool::new();
        let out = pool.map((0..32).collect::<Vec<_>>(), 1, |x| x + 1);
        assert_eq!(out.len(), 32);
        let (a, b) = pool.join(1, || 1, || 2);
        assert_eq!((a, b), (1, 2));
        assert_eq!(pool.workers(), 0, "jobs=1 must not create helper threads");
    }

    #[test]
    fn pool_workers_are_reused_across_batches() {
        let pool = Pool::new();
        for round in 0..5 {
            let out = pool.map((0..40).collect::<Vec<_>>(), 4, |x| x * x);
            assert_eq!(out, (0..40).map(|x| x * x).collect::<Vec<_>>(), "round {round}");
        }
        assert!(
            pool.workers() <= 3,
            "pool must reuse its {} helpers, not respawn per batch",
            pool.workers()
        );
    }

    #[test]
    fn nested_fan_out_shares_the_pool_without_deadlock() {
        let pool = Pool::new();
        let out = pool.map((0..6u64).collect::<Vec<_>>(), 3, |x| {
            // Inner fan-out from inside a pool task: the global-pool
            // free functions nest the same way in the sweep layer.
            let inner = Pool::global().map((0..5u64).collect::<Vec<_>>(), 2, move |y| x * 10 + y);
            inner.into_iter().sum::<u64>()
        });
        let expect: Vec<u64> = (0..6u64).map(|x| (0..5u64).map(|y| x * 10 + y).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn deeply_nested_self_pool_fan_out_makes_progress() {
        // Nested submission to the *same* pool: the submitter always
        // participates, so progress never requires a free helper.
        let pool = Arc::new(Pool::new());
        let p2 = Arc::clone(&pool);
        let out = pool.map(vec![1u64, 2, 3], 2, move |x| {
            p2.map(vec![10u64, 20], 2, move |y| x + y).into_iter().sum::<u64>()
        });
        assert_eq!(out, vec![32, 34, 36]);
    }

    #[test]
    fn helpers_inherit_the_submitters_trace_id() {
        let pool = Pool::new();
        let _scope = telemetry::trace_scope(Some(telemetry::TraceId(77)));
        let traces =
            pool.map((0..32).collect::<Vec<_>>(), 4, |_| telemetry::current_trace().map(|t| t.0));
        assert!(
            traces.iter().all(|&t| t == Some(77)),
            "every task (submitter- or helper-run) sees the request id: {traces:?}"
        );
    }

    #[test]
    fn panics_propagate_to_the_submitter() {
        let caught = std::panic::catch_unwind(|| {
            par_map(vec![1, 2, 3, 4], 2, |x| {
                if x == 3 {
                    panic!("boom {x}");
                }
                x
            })
        });
        assert!(caught.is_err(), "task panic must re-raise on the caller");
    }
}
