//! Global string interner for the analysis core.
//!
//! The analysis hot paths (grouping, benefit, export) repeatedly touch a
//! small, fixed vocabulary of strings: API names, source file paths, and
//! composed site labels ("cudaMemcpy in als.cu at line 412"). Interning
//! collapses each distinct string to a `u32` [`Sym`] so the hot paths can
//! key dense tables and compare by integer, and exporters resolve the text
//! only at serialization time.
//!
//! Design constraints:
//!
//! - Interned strings live for the program's lifetime (`Box::leak`). The
//!   vocabulary is bounded by the trace's distinct call sites, so this is a
//!   few KiB, not a leak in practice.
//! - `intern` takes a write lock only for strings not seen before; repeat
//!   interning of a known string takes a read lock on the map.
//! - `Sym::resolve` is lock-free after the first resolve of a given symbol:
//!   the backing table is an append-only list of stable `&'static str`
//!   pointers behind an `RwLock` taken only for the (cheap) slice read.
//! - Symbol numbering depends on interning order and therefore MUST NOT be
//!   written into any persisted artifact or digest. Artifacts always store
//!   the resolved string (see DESIGN.md "Data layout").

use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// An interned string handle. Cheap to copy, compare, and hash.
///
/// Ordering of `Sym` values reflects interning order, not lexicographic
/// order of the underlying strings — sort by `resolve()` when an
/// alphabetical order is required.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// Resolve the symbol back to its string.
    pub fn resolve(self) -> &'static str {
        table().resolve(self)
    }

    /// Raw index, usable for dense `Vec`-indexed side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

struct SymTable {
    /// string -> id. Keys are the same leaked allocations as `strings`.
    map: RwLock<HashMap<&'static str, u32>>,
    /// id -> string. Append-only.
    strings: RwLock<Vec<&'static str>>,
}

impl SymTable {
    fn new() -> SymTable {
        SymTable { map: RwLock::new(HashMap::new()), strings: RwLock::new(Vec::new()) }
    }

    fn intern(&self, s: &str) -> Sym {
        if let Some(&id) = self.map.read().unwrap().get(s) {
            return Sym(id);
        }
        let mut map = self.map.write().unwrap();
        // Re-check under the write lock: another thread may have interned
        // the same string between our read and write acquisitions.
        if let Some(&id) = map.get(s) {
            return Sym(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let mut strings = self.strings.write().unwrap();
        let id = u32::try_from(strings.len()).expect("intern table overflow");
        strings.push(leaked);
        map.insert(leaked, id);
        Sym(id)
    }

    fn resolve(&self, sym: Sym) -> &'static str {
        self.strings.read().unwrap()[sym.0 as usize]
    }

    fn len(&self) -> usize {
        self.strings.read().unwrap().len()
    }
}

fn table() -> &'static SymTable {
    static TABLE: OnceLock<SymTable> = OnceLock::new();
    TABLE.get_or_init(SymTable::new)
}

/// Intern `s`, returning its stable symbol. Idempotent: the same string
/// always returns the same `Sym` for the lifetime of the process.
pub fn intern(s: &str) -> Sym {
    table().intern(s)
}

/// Intern a string that is already `'static`, e.g. API names from the
/// driver's static tables. Avoids the copy when the string is new.
pub fn intern_static(s: &'static str) -> Sym {
    // The generic path would leak a fresh copy; for 'static inputs we can
    // insert the original pointer directly.
    let t = table();
    if let Some(&id) = t.map.read().unwrap().get(s) {
        return Sym(id);
    }
    let mut map = t.map.write().unwrap();
    if let Some(&id) = map.get(s) {
        return Sym(id);
    }
    let mut strings = t.strings.write().unwrap();
    let id = u32::try_from(strings.len()).expect("intern table overflow");
    strings.push(s);
    map.insert(s, id);
    Sym(id)
}

/// Number of distinct strings interned so far. Dense side tables indexed by
/// `Sym::index` should be sized with this.
pub fn table_len() -> usize {
    table().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_content() {
        let s = intern("cudaMemcpy in als.cu at line 412");
        assert_eq!(s.resolve(), "cudaMemcpy in als.cu at line 412");
        let t = intern("kernel.cu");
        assert_eq!(t.resolve(), "kernel.cu");
    }

    #[test]
    fn dedup_returns_same_symbol() {
        let a = intern("intern-dedup-probe");
        let b = intern("intern-dedup-probe");
        let c = intern(&String::from("intern-dedup-probe"));
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a.index(), b.index());
        let d = intern("intern-dedup-other");
        assert_ne!(a, d);
    }

    #[test]
    fn static_and_owned_paths_agree() {
        let a = intern_static("intern-static-probe");
        let b = intern("intern-static-probe");
        assert_eq!(a, b);
        assert_eq!(b.resolve(), "intern-static-probe");
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        use std::sync::Arc;
        let names: Arc<Vec<String>> =
            Arc::new((0..64).map(|i| format!("intern-conc-{}", i % 8)).collect());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let names = Arc::clone(&names);
            handles.push(std::thread::spawn(move || {
                names.iter().map(|n| intern(n)).collect::<Vec<_>>()
            }));
        }
        let results: Vec<Vec<Sym>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
        for (i, sym) in results[0].iter().enumerate() {
            assert_eq!(sym.resolve(), format!("intern-conc-{}", i % 8));
        }
    }
}
