//! FFB — the shared binary artifact codec and container format.
//!
//! Every machine-path artifact in the workspace (stage-cache entries,
//! binary sweep shards, `--format bin` exports) is an **FFB** file: a
//! versioned little-endian container whose sections follow the same
//! interned-`Sym`/columnar layout the in-memory analysis core uses, so a
//! reader makes one pass with zero per-record allocation. JSON remains
//! the human-facing export; FFB is what other runs and tools ingest.
//!
//! Container layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic "DIOGFFB1"
//! 8       4     SCHEMA_VERSION (u32)
//! 12      8     build tag (u64; digest of the producing binary)
//! 20      8     checksum (u64; over every byte from offset 28 on)
//! 28      1     kind byte (artifact kind, KIND_DOC, or KIND_SWEEP)
//! 29      4     section count (u32, at most MAX_SECTIONS)
//! 33      12×n  section table: (id u32, length u64) per section
//! ...           section payloads, back to back in table order
//! ```
//!
//! Strings never appear inline in records. Each container carries one
//! string-table section ([`SEC_STRINGS`]); records refer to strings by
//! dense `u32` table ids, and a reader interns each table entry exactly
//! once per *file* (not once per record) into the global symbol table
//! (`crate::intern`), after which every per-record string resolve is an
//! index into an already-loaded `Vec<Sym>`.
//!
//! Integrity: [`Ffb::parse`] verifies magic, schema version, section
//! bounds, and the checksum, so any single-byte corruption of a stored
//! file is rejected as an error — decoding never panics on hostile
//! bytes. The build tag is *not* checked by `parse` (so `diogenes
//! convert` can read files from other builds); the artifact-cache path
//! ([`decode_artifact`]) does check it, preserving the store's rule that
//! a rebuilt binary never trusts an old cache.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use cuda_driver::{ApiFn, InternalFn};
use gpu_sim::{Digest, Direction, Frame, SourceLoc, StackTrace, WaitReason};
use instrument::Discovery;

use crate::intern::{intern, intern_static, Sym};
use crate::json::Json;
use crate::records::{
    DuplicateTransfer, OpInstance, ProtectedAccess, Stage1Result, Stage2Result, Stage3Result,
    Stage4Result, TracedCall, TransferRec,
};
use crate::store::{build_tag, Artifact, ArtifactKind};
use crate::sweep::{Axis, AxisLayout, Shard, SweepCell, SweepMatrix, SweepSummary};

/// Bump whenever the binary codec or the keying rules change; old disk
/// entries become stale and are ignored.
pub const SCHEMA_VERSION: u32 = 2;

/// File magic for FFB containers ("DIOGenes Feed-Forward Binary v1").
pub const FFB_MAGIC: &[u8; 8] = b"DIOGFFB1";

/// Container kind byte for a generic JSON document (reports, telemetry).
pub const KIND_DOC: u8 = 16;

/// Container kind byte for a typed columnar sweep matrix.
pub const KIND_SWEEP: u8 = 17;

/// Section id: the string table (one per container).
pub const SEC_STRINGS: u32 = 1;

/// Section id: artifact record payload.
pub const SEC_RECORDS: u32 = 2;

/// Section id: generic JSON document tree.
pub const SEC_DOC: u32 = 3;

/// Section id: sweep header (app, workload, layout, shard, axes).
pub const SEC_SWEEP_HEADER: u32 = 4;

/// Section id: sweep cells, one column per field.
pub const SEC_SWEEP_CELLS: u32 = 5;

/// Containers hold a handful of sections; the cap keeps [`Ffb::parse`]
/// allocation-free (the section table lives in a fixed array).
pub const MAX_SECTIONS: usize = 8;

/// Fixed header length in bytes (magic + version + build tag + checksum
/// + kind + section count); the section table follows immediately.
///
/// Public so the store can fail-fast-validate a header prefix before
/// reading an entry's payload.
pub const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 1 + 4;
const CHECKSUM_AT: usize = 20;
const KIND_AT: usize = 28;

/// Does `bytes` start with the FFB magic? Used by readers that accept
/// either JSON text or a binary container and sniff which they got.
pub fn is_ffb(bytes: &[u8]) -> bool {
    bytes.len() >= 8 && &bytes[..8] == FFB_MAGIC
}

/// Cheap header currency check for cache hygiene: magic, schema version
/// and build tag match the running binary. Does not touch the payload
/// (no checksum walk), so `scan_cache` stays O(header) per file.
pub fn header_is_current(bytes: &[u8]) -> bool {
    check_entry_header(bytes).is_ok()
}

/// Why [`check_entry_header`] rejected a cache entry's header.
#[derive(Debug)]
pub enum HeaderIssue {
    /// Another schema version or another build wrote it — routine
    /// staleness after a rebuild, not a sign of damage.
    Stale(String),
    /// Structurally impossible (short, wrong magic): bit rot or a
    /// foreign file sitting in the cache directory.
    Corrupt(String),
}

/// Fail-fast validation of a cache entry's fixed header prefix —
/// length, magic, schema version, build tag — before any payload byte
/// is read. Lets `store::read_entry` classify (and log) bad entries
/// without paying a full-file read for data it will discard, and keeps
/// `scan_cache` O(header) per file.
pub fn check_entry_header(header: &[u8]) -> Result<(), HeaderIssue> {
    if header.len() < HEADER_LEN {
        return Err(HeaderIssue::Corrupt(format!("truncated header ({} bytes)", header.len())));
    }
    if &header[..8] != FFB_MAGIC {
        return Err(HeaderIssue::Corrupt("bad magic".to_string()));
    }
    let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if version != SCHEMA_VERSION {
        return Err(HeaderIssue::Stale(format!(
            "schema version {version}, expected {SCHEMA_VERSION}"
        )));
    }
    let tag = u64::from_le_bytes(header[12..CHECKSUM_AT].try_into().unwrap());
    if tag != build_tag() {
        return Err(HeaderIssue::Stale("written by a different build".to_string()));
    }
    Ok(())
}

const CHECKSUM_PRIME: u64 = 0xff51_afd7_ed55_8ccd;
const CHECKSUM_INIT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Word-at-a-time mixing checksum over the covered bytes. Every step is
/// a bijection of the running state for a fixed input suffix, so any
/// single-word (hence single-byte) change is *guaranteed* to change the
/// result — exactly the corruption class disk rot and truncated writes
/// produce.
fn checksum(bytes: &[u8]) -> u64 {
    let mut cs = ChecksumStream::new(bytes.len() as u64);
    cs.update(bytes);
    cs.finish()
}

/// Incremental form of [`checksum`] for streamed writes: feed the
/// covered region in arbitrary chunks and [`finish`]. The one-shot
/// function folds the total length into the *seed*, so the length must
/// be known up front — which [`FfbWriter::finish`] always does, since
/// it runs after the last payload byte has streamed out. Chunking is
/// invisible to the result (a partial trailing word is carried between
/// `update` calls); equality with [`checksum`] over the concatenation
/// is pinned by a unit test across lengths and chunkings.
///
/// [`finish`]: ChecksumStream::finish
struct ChecksumStream {
    h: u64,
    pending: [u8; 8],
    npending: usize,
}

impl ChecksumStream {
    fn new(total_len: u64) -> ChecksumStream {
        ChecksumStream {
            h: CHECKSUM_INIT ^ total_len.wrapping_mul(CHECKSUM_PRIME),
            pending: [0u8; 8],
            npending: 0,
        }
    }

    fn word(&mut self, w: u64) {
        self.h = (self.h ^ w).wrapping_mul(CHECKSUM_PRIME);
        self.h ^= self.h >> 29;
    }

    fn update(&mut self, mut bytes: &[u8]) {
        if self.npending > 0 {
            let take = (8 - self.npending).min(bytes.len());
            self.pending[self.npending..self.npending + take].copy_from_slice(&bytes[..take]);
            self.npending += take;
            bytes = &bytes[take..];
            if self.npending < 8 {
                return;
            }
            self.word(u64::from_le_bytes(self.pending));
            self.npending = 0;
        }
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        self.pending[..rem.len()].copy_from_slice(rem);
        self.npending = rem.len();
    }

    fn finish(mut self) -> u64 {
        if self.npending > 0 {
            // Zero-pad the trailing partial word, like the one-shot walk.
            let mut buf = [0u8; 8];
            buf[..self.npending].copy_from_slice(&self.pending[..self.npending]);
            self.word(u64::from_le_bytes(buf));
        }
        let mut h = self.h;
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^ (h >> 33)
    }
}

// ---------------------------------------------------------------------------
// Container writer / reader
// ---------------------------------------------------------------------------

/// Assembles an FFB container: append sections, then [`finish`].
///
/// [`finish`]: FfbBuilder::finish
pub struct FfbBuilder {
    kind: u8,
    sections: Vec<(u32, Vec<u8>)>,
}

impl FfbBuilder {
    pub fn new(kind: u8) -> Self {
        FfbBuilder { kind, sections: Vec::new() }
    }

    pub fn section(&mut self, id: u32, payload: Vec<u8>) {
        assert!(self.sections.len() < MAX_SECTIONS, "too many FFB sections");
        self.sections.push((id, payload));
    }

    /// Serialize header + section table + payloads and stamp the checksum.
    pub fn finish(self) -> Vec<u8> {
        let body: usize = self.sections.iter().map(|(_, p)| p.len()).sum();
        let mut out = Vec::with_capacity(HEADER_LEN + 12 * self.sections.len() + body);
        out.extend_from_slice(FFB_MAGIC);
        out.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
        out.extend_from_slice(&build_tag().to_le_bytes());
        out.extend_from_slice(&[0u8; 8]); // checksum placeholder
        out.push(self.kind);
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (id, payload) in &self.sections {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        }
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        let ck = checksum(&out[KIND_AT..]);
        out[CHECKSUM_AT..CHECKSUM_AT + 8].copy_from_slice(&ck.to_le_bytes());
        out
    }
}

/// Bytes [`FfbWriter`] accumulates before flushing to the stream; also
/// the chunk size of the checksum read-back pass.
const WRITER_CHUNK: usize = 64 * 1024;

fn io_err(what: &str, e: std::io::Error) -> String {
    format!("ffb writer: {what}: {e}")
}

/// Streaming FFB container writer: declare the section ids up front,
/// stream each payload through [`begin_section`] / [`write`] /
/// [`end_section`] (or [`section`] for a one-slice section), then
/// [`finish`]. Output is byte-identical to [`FfbBuilder::finish`] over
/// the same sections — pinned by unit tests and `codec_props` — but the
/// container is never assembled in memory: sections go straight to the
/// stream through a 64 KiB chunk buffer, so `sweep --format bin` and
/// streaming-epoch runs can flush finished cells/epochs as they close.
///
/// `W` must be `Read + Write + Seek` (a read-write file, or an
/// `io::Cursor`): the container checksum covers the section *table*,
/// whose lengths are known only after the payloads have streamed out,
/// so `finish` back-patches the table and then re-reads the covered
/// region once — in chunks — to compute the checksum. Memory stays at
/// one chunk buffer regardless of artifact size.
///
/// [`begin_section`]: FfbWriter::begin_section
/// [`write`]: FfbWriter::write
/// [`end_section`]: FfbWriter::end_section
/// [`section`]: FfbWriter::section
/// [`finish`]: FfbWriter::finish
pub struct FfbWriter<W: std::io::Read + std::io::Write + std::io::Seek> {
    w: W,
    /// Stream position of the container's first byte; the container
    /// need not start at position 0.
    base: u64,
    ids: [u32; MAX_SECTIONS],
    lens: [u64; MAX_SECTIONS],
    count: usize,
    next: usize,
    in_section: bool,
    buf: Vec<u8>,
}

impl<W: std::io::Read + std::io::Write + std::io::Seek> FfbWriter<W> {
    /// Start a container of `kind` whose sections will stream in exactly
    /// the declared order. The header and a zero-length section table go
    /// out immediately; [`FfbWriter::finish`] patches them.
    pub fn new(mut w: W, kind: u8, sections: &[u32]) -> Result<FfbWriter<W>, String> {
        if sections.len() > MAX_SECTIONS {
            return Err("ffb writer: too many sections".to_string());
        }
        let base = w.stream_position().map_err(|e| io_err("position", e))?;
        let mut ids = [0u32; MAX_SECTIONS];
        ids[..sections.len()].copy_from_slice(sections);
        let mut buf = Vec::with_capacity(WRITER_CHUNK);
        buf.extend_from_slice(FFB_MAGIC);
        buf.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
        buf.extend_from_slice(&build_tag().to_le_bytes());
        buf.extend_from_slice(&[0u8; 8]); // checksum placeholder
        buf.push(kind);
        buf.extend_from_slice(&(sections.len() as u32).to_le_bytes());
        for &id in sections {
            buf.extend_from_slice(&id.to_le_bytes());
            buf.extend_from_slice(&0u64.to_le_bytes()); // length placeholder
        }
        Ok(FfbWriter {
            w,
            base,
            ids,
            lens: [0u64; MAX_SECTIONS],
            count: sections.len(),
            next: 0,
            in_section: false,
            buf,
        })
    }

    /// Open the next section; `id` must match the declared order.
    pub fn begin_section(&mut self, id: u32) -> Result<(), String> {
        if self.in_section {
            return Err("ffb writer: previous section still open".to_string());
        }
        if self.next >= self.count || self.ids[self.next] != id {
            return Err(format!("ffb writer: section {id} out of declared order"));
        }
        self.in_section = true;
        Ok(())
    }

    /// Append payload bytes to the open section.
    pub fn write(&mut self, bytes: &[u8]) -> Result<(), String> {
        if !self.in_section {
            return Err("ffb writer: write outside a section".to_string());
        }
        self.lens[self.next] += bytes.len() as u64;
        if self.buf.len() + bytes.len() > WRITER_CHUNK {
            self.flush_buf()?;
        }
        if bytes.len() >= WRITER_CHUNK {
            self.w.write_all(bytes).map_err(|e| io_err("write", e))
        } else {
            self.buf.extend_from_slice(bytes);
            Ok(())
        }
    }

    /// Close the open section.
    pub fn end_section(&mut self) -> Result<(), String> {
        if !self.in_section {
            return Err("ffb writer: no open section".to_string());
        }
        self.in_section = false;
        self.next += 1;
        Ok(())
    }

    /// A whole section from one slice.
    pub fn section(&mut self, id: u32, payload: &[u8]) -> Result<(), String> {
        self.begin_section(id)?;
        self.write(payload)?;
        self.end_section()
    }

    fn flush_buf(&mut self) -> Result<(), String> {
        if !self.buf.is_empty() {
            self.w.write_all(&self.buf).map_err(|e| io_err("write", e))?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Back-patch the section table and checksum, flush, and hand the
    /// stream back positioned at the end of the container.
    pub fn finish(mut self) -> Result<W, String> {
        use std::io::SeekFrom;
        if self.in_section || self.next != self.count {
            return Err("ffb writer: finish with sections missing".to_string());
        }
        self.flush_buf()?;
        let end = self.w.seek(SeekFrom::End(0)).map_err(|e| io_err("seek", e))?;
        for i in 0..self.count {
            let at = self.base + (HEADER_LEN + 12 * i + 4) as u64;
            self.w.seek(SeekFrom::Start(at)).map_err(|e| io_err("seek", e))?;
            self.w.write_all(&self.lens[i].to_le_bytes()).map_err(|e| io_err("patch table", e))?;
        }
        // The checksum covers the kind byte through the last payload
        // byte — including the table just patched — and the mix is
        // strictly sequential, so re-read that region in chunks.
        let covered_from = self.base + KIND_AT as u64;
        self.w.seek(SeekFrom::Start(covered_from)).map_err(|e| io_err("seek", e))?;
        let mut cs = ChecksumStream::new(end - covered_from);
        self.buf.clear();
        self.buf.resize(WRITER_CHUNK, 0);
        let mut left = end - covered_from;
        while left > 0 {
            let want = left.min(WRITER_CHUNK as u64) as usize;
            let got = self.w.read(&mut self.buf[..want]).map_err(|e| io_err("read back", e))?;
            if got == 0 {
                return Err("ffb writer: short read during checksum".to_string());
            }
            cs.update(&self.buf[..got]);
            left -= got as u64;
        }
        let at = self.base + CHECKSUM_AT as u64;
        self.w.seek(SeekFrom::Start(at)).map_err(|e| io_err("seek", e))?;
        self.w.write_all(&cs.finish().to_le_bytes()).map_err(|e| io_err("patch checksum", e))?;
        self.w.seek(SeekFrom::Start(end)).map_err(|e| io_err("seek", e))?;
        self.w.flush().map_err(|e| io_err("flush", e))?;
        Ok(self.w)
    }
}

/// A parsed (but not decoded) FFB container: validated header, checksum,
/// and section bounds. Parsing allocates nothing — the section table is
/// a fixed array — so scratch readers built on it stay allocation-free.
pub struct Ffb<'a> {
    pub kind: u8,
    pub build_tag: u64,
    bytes: &'a [u8],
    count: usize,
    sections: [(u32, usize, usize); MAX_SECTIONS],
}

impl<'a> Ffb<'a> {
    /// Validate magic, schema version, checksum, and the section table.
    /// Every failure is an `Err`; hostile input can never panic past
    /// this point because all section slices are bounds-checked here.
    pub fn parse(bytes: &'a [u8]) -> Result<Ffb<'a>, String> {
        if bytes.len() < HEADER_LEN {
            return Err(format!("ffb: truncated header ({} bytes)", bytes.len()));
        }
        if &bytes[..8] != FFB_MAGIC {
            return Err("ffb: bad magic".to_string());
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != SCHEMA_VERSION {
            return Err(format!("ffb: schema version {version}, expected {SCHEMA_VERSION}"));
        }
        let stored = u64::from_le_bytes(bytes[CHECKSUM_AT..CHECKSUM_AT + 8].try_into().unwrap());
        if stored != checksum(&bytes[KIND_AT..]) {
            return Err("ffb: checksum mismatch (corrupt file)".to_string());
        }
        let build = u64::from_le_bytes(bytes[12..CHECKSUM_AT].try_into().unwrap());
        let kind = bytes[KIND_AT];
        let count = u32::from_le_bytes(bytes[KIND_AT + 1..HEADER_LEN].try_into().unwrap()) as usize;
        if count > MAX_SECTIONS {
            return Err(format!("ffb: {count} sections exceeds the cap of {MAX_SECTIONS}"));
        }
        let table_end = HEADER_LEN + 12 * count;
        if table_end > bytes.len() {
            return Err("ffb: truncated section table".to_string());
        }
        let mut sections = [(0u32, 0usize, 0usize); MAX_SECTIONS];
        let mut offset = table_end;
        for (i, slot) in sections.iter_mut().enumerate().take(count) {
            let at = HEADER_LEN + 12 * i;
            let id = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
            let len = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap());
            let len = usize::try_from(len).map_err(|_| "ffb: section length overflow")?;
            let end = offset.checked_add(len).filter(|&e| e <= bytes.len());
            let end = end.ok_or_else(|| format!("ffb: section {id} overruns the file"))?;
            *slot = (id, offset, len);
            offset = end;
        }
        if offset != bytes.len() {
            return Err(format!("ffb: {} trailing bytes after sections", bytes.len() - offset));
        }
        Ok(Ffb { kind, build_tag: build, bytes, count, sections })
    }

    /// Payload of the first section with `id`.
    pub fn section(&self, id: u32) -> Result<&'a [u8], String> {
        self.sections[..self.count]
            .iter()
            .find(|s| s.0 == id)
            .map(|&(_, start, len)| &self.bytes[start..start + len])
            .ok_or_else(|| format!("ffb: missing section {id}"))
    }
}

/// The borrowed decode layer over a caller-owned buffer — a mapped
/// file, a pooled disk read, or an in-place request body. One
/// [`Ffb::parse`] validates the header, checksum, and section bounds;
/// after that, section payloads, the interned string table
/// ([`FfbView::strings_into`]), and typed columns ([`Dec::col_u64`])
/// come straight out of the buffer with no scratch `Vec` per section.
/// No alignment is assumed anywhere (see [`ColU64`]), so the buffer can
/// start at any offset.
pub struct FfbView<'a> {
    ffb: Ffb<'a>,
}

impl<'a> FfbView<'a> {
    /// Validate once; every later accessor is a bounds-checked borrow.
    pub fn parse(bytes: &'a [u8]) -> Result<FfbView<'a>, String> {
        Ok(FfbView { ffb: Ffb::parse(bytes)? })
    }

    /// The container's kind byte.
    pub fn kind(&self) -> u8 {
        self.ffb.kind
    }

    /// The producing binary's build tag (not integrity-checked; the
    /// artifact-cache path compares it against [`build_tag`]).
    pub fn build_tag(&self) -> u64 {
        self.ffb.build_tag
    }

    /// Payload of the first section with `id`.
    pub fn section(&self, id: u32) -> Result<&'a [u8], String> {
        self.ffb.section(id)
    }

    /// `Err` unless the container carries `kind` (`what` names the
    /// expected kind in the message).
    pub fn expect_kind(&self, kind: u8, what: &str) -> Result<(), String> {
        if self.ffb.kind != kind {
            return Err(format!("not a {what} container (kind {})", self.ffb.kind));
        }
        Ok(())
    }

    /// Re-intern the container's string table into a reused [`StrTable`]
    /// — the zero-steady-state-allocation path: the `Sym` vector is
    /// refilled in place and interning an already-known string costs no
    /// heap (the interner's read-lock fast path).
    pub fn strings_into(&self, table: &mut StrTable) -> Result<(), String> {
        table.refill(self.section(SEC_STRINGS)?)
    }
}

/// A borrowed `u64` column over section bytes, validated once to be a
/// whole number of words. Elements are read as little-endian per access,
/// so the backing buffer — a mapped file, a request body — needs no
/// alignment; when the bytes *happen* to be 8-aligned on a little-endian
/// host, [`ColU64::as_aligned`] exposes them as `&[u64]` wholesale and
/// bulk copies become `memcpy`.
#[derive(Clone, Copy)]
pub struct ColU64<'a>(&'a [u8]);

impl<'a> ColU64<'a> {
    pub fn new(bytes: &'a [u8]) -> Result<ColU64<'a>, String> {
        if !bytes.len().is_multiple_of(8) {
            return Err(format!("column of {} bytes is not whole words", bytes.len()));
        }
        Ok(ColU64(bytes))
    }

    pub fn len(&self) -> usize {
        self.0.len() / 8
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn get(&self, i: usize) -> Option<u64> {
        let at = i.checked_mul(8)?;
        let b = self.0.get(at..at + 8)?;
        Some(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// `col[i]`; panics out of range, like a slice index — for loops
    /// already bounded by [`ColU64::len`].
    pub fn at(&self, i: usize) -> u64 {
        u64::from_le_bytes(self.0[8 * i..8 * i + 8].try_into().unwrap())
    }

    pub fn iter(&self) -> impl Iterator<Item = u64> + 'a {
        self.0.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap()))
    }

    /// The words as a borrowed `&[u64]` when the backing bytes are
    /// 8-aligned on a little-endian host; `None` otherwise, and callers
    /// fall back to per-access reads. Safe reinterpretation: `align_to`
    /// only yields a middle when the alignment holds, and every bit
    /// pattern is a valid `u64`.
    pub fn as_aligned(&self) -> Option<&'a [u64]> {
        if cfg!(not(target_endian = "little")) {
            return None;
        }
        // SAFETY: alignment is enforced by align_to itself; u64 has no
        // invalid representations; the lifetime is the buffer's own.
        let (head, mid, tail) = unsafe { self.0.align_to::<u64>() };
        (head.is_empty() && tail.is_empty()).then_some(mid)
    }
}

/// [`ColU64`] for `f64` columns (stored as raw bits).
#[derive(Clone, Copy)]
pub struct ColF64<'a>(ColU64<'a>);

impl<'a> ColF64<'a> {
    pub fn new(bytes: &'a [u8]) -> Result<ColF64<'a>, String> {
        Ok(ColF64(ColU64::new(bytes)?))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn get(&self, i: usize) -> Option<f64> {
        self.0.get(i).map(f64::from_bits)
    }

    /// `col[i]`; panics out of range, like a slice index.
    pub fn at(&self, i: usize) -> f64 {
        f64::from_bits(self.0.at(i))
    }

    pub fn iter(&self) -> impl Iterator<Item = f64> + 'a {
        self.0.iter().map(f64::from_bits)
    }

    /// See [`ColU64::as_aligned`]; any bit pattern is a valid `f64`.
    pub fn as_aligned(&self) -> Option<&'a [f64]> {
        if cfg!(not(target_endian = "little")) {
            return None;
        }
        // SAFETY: as for ColU64::as_aligned.
        let (head, mid, tail) = unsafe { self.0 .0.align_to::<f64>() };
        (head.is_empty() && tail.is_empty()).then_some(mid)
    }
}

// ---------------------------------------------------------------------------
// Primitive encoder / decoder
// ---------------------------------------------------------------------------
//
// Hand-rolled little-endian primitives (the workspace is std-only, no
// serde). Unordered collections are sorted on encode so the bytes are a
// function of the value, not of hash-map iteration order; decoded
// sets/maps are only ever consumed via membership tests and keyed
// lookups downstream (`problem::classify`), so re-hashing on decode
// cannot change reports.

/// Little-endian byte sink for section payloads.
#[derive(Default)]
pub struct Enc(pub Vec<u8>);

impl Enc {
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u128(&mut self, v: u128) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.0.extend_from_slice(s.as_bytes());
    }
    pub fn opt<T>(&mut self, v: &Option<T>, f: impl FnOnce(&mut Self, &T)) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                f(self, x);
            }
        }
    }
}

/// Bounds-checked little-endian cursor over a section payload. Every
/// method returns `Err` (never panics) on truncated or corrupt input.
pub struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// `Err` unless the cursor consumed the payload exactly.
    pub fn finish(&self) -> Result<(), String> {
        if self.pos != self.bytes.len() {
            return Err(format!("{} trailing bytes in section", self.remaining()));
        }
        Ok(())
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| format!("artifact truncated at byte {}", self.pos))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    pub fn bool(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(format!("bad bool byte {b:#04x}")),
        }
    }
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub fn u128(&mut self) -> Result<u128, String> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }
    pub fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }
    pub fn seq_len(&mut self) -> Result<usize, String> {
        let n = self.u64()?;
        // Any valid length is bounded by the remaining bytes (every
        // element costs at least one byte), which caps allocations on
        // corrupt input.
        let n = usize::try_from(n).map_err(|_| "length overflow".to_string())?;
        if n > self.remaining() {
            return Err(format!("implausible collection length {n}"));
        }
        Ok(n)
    }
    /// A `seq_len()` whose elements are fixed-width: also requires
    /// `n * elem_bytes` to fit in the remaining payload, so column reads
    /// can pre-slice before allocating.
    pub fn col_len(&mut self, elem_bytes: usize) -> Result<usize, String> {
        let n = self.seq_len()?;
        let total = n.checked_mul(elem_bytes).ok_or("column size overflow")?;
        if total > self.remaining() {
            return Err(format!("implausible column length {n}"));
        }
        Ok(n)
    }
    pub fn str(&mut self) -> Result<String, String> {
        Ok(self.str_ref()?.to_string())
    }
    /// Borrowed string view — lets the string table intern straight from
    /// the file bytes without an intermediate `String`.
    pub fn str_ref(&mut self) -> Result<&'a str, String> {
        let n = self.seq_len()?;
        let raw = self.take(n)?;
        std::str::from_utf8(raw).map_err(|_| "invalid utf-8 in artifact".to_string())
    }
    pub fn opt<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, String>,
    ) -> Result<Option<T>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            b => Err(format!("bad option tag {b:#04x}")),
        }
    }

    /// Take `n` 8-byte elements as a borrowed typed column.
    pub fn col_u64(&mut self, n: usize) -> Result<ColU64<'a>, String> {
        let total = n.checked_mul(8).ok_or("column size overflow")?;
        ColU64::new(self.take(total)?)
    }

    /// Take `n` 8-byte elements as a borrowed `f64` column.
    pub fn col_f64(&mut self, n: usize) -> Result<ColF64<'a>, String> {
        let total = n.checked_mul(8).ok_or("column size overflow")?;
        ColF64::new(self.take(total)?)
    }
}

fn append_u64s(dst: &mut Vec<u64>, col: ColU64<'_>) {
    // Mapped/pooled buffers carry no alignment promise, but in practice
    // most are page- or Vec-aligned; take the memcpy when available.
    match col.as_aligned() {
        Some(words) => dst.extend_from_slice(words),
        None => dst.extend(col.iter()),
    }
}

fn extend_u64s(dst: &mut Vec<u64>, col: ColU64<'_>) {
    dst.clear();
    append_u64s(dst, col);
}

fn extend_f64s(dst: &mut Vec<f64>, col: ColF64<'_>) {
    dst.clear();
    match col.as_aligned() {
        Some(vals) => dst.extend_from_slice(vals),
        None => dst.extend(col.iter()),
    }
}

// ---------------------------------------------------------------------------
// String table
// ---------------------------------------------------------------------------

/// Deduplicating writer for a container's string table. Strings are
/// mapped to dense local ids in first-reference order via the global
/// interner, with a `Sym`-indexed side table so repeat lookups are two
/// array reads — no hashing per record.
#[derive(Default)]
pub struct StrTableBuilder {
    /// `Sym::index() -> local id`, `u32::MAX` = not yet assigned.
    ids: Vec<u32>,
    order: Vec<Sym>,
}

impl StrTableBuilder {
    pub fn new() -> Self {
        StrTableBuilder::default()
    }

    pub fn add(&mut self, s: &str) -> u32 {
        self.add_sym(intern(s))
    }

    pub fn add_static(&mut self, s: &'static str) -> u32 {
        self.add_sym(intern_static(s))
    }

    pub fn add_sym(&mut self, sym: Sym) -> u32 {
        let idx = sym.index();
        if idx >= self.ids.len() {
            self.ids.resize(idx + 1, u32::MAX);
        }
        if self.ids[idx] == u32::MAX {
            self.ids[idx] = self.order.len() as u32;
            self.order.push(sym);
        }
        self.ids[idx]
    }

    /// Serialize as a [`SEC_STRINGS`] payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        e.u32(self.order.len() as u32);
        for sym in &self.order {
            e.str(sym.resolve());
        }
        e.0
    }
}

/// A container's parsed string table: every entry interned exactly once
/// at parse time, so per-record resolution is one `Vec` index. Reusable
/// — [`FfbView::strings_into`] refills one in place, and refilling with
/// already-interned strings allocates nothing, which is what keeps the
/// scratch readers' steady state off the heap entirely.
#[derive(Default)]
pub struct StrTable {
    syms: Vec<Sym>,
}

impl StrTable {
    pub fn parse(section: &[u8]) -> Result<StrTable, String> {
        let mut t = StrTable::default();
        t.refill(section)?;
        Ok(t)
    }

    /// Clear and re-parse in place, keeping the vector's capacity.
    fn refill(&mut self, section: &[u8]) -> Result<(), String> {
        self.syms.clear();
        let mut d = Dec::new(section);
        let n = d.u32()? as usize;
        if n > d.remaining() {
            return Err(format!("implausible string table size {n}"));
        }
        self.syms.reserve(n);
        for _ in 0..n {
            self.syms.push(intern(d.str_ref()?));
        }
        d.finish()
    }

    pub fn sym(&self, id: u32) -> Result<Sym, String> {
        self.syms.get(id as usize).copied().ok_or_else(|| format!("bad string table id {id}"))
    }

    pub fn get(&self, id: u32) -> Result<&'static str, String> {
        Ok(self.sym(id)?.resolve())
    }
}

// ---------------------------------------------------------------------------
// Artifact payloads (stage-cache entries)
// ---------------------------------------------------------------------------

/// Build the string-table and records payloads for a stage artifact.
/// `None` for memory-only kinds (analysis).
fn artifact_sections(artifact: &Artifact) -> Option<(StrTableBuilder, Enc)> {
    let mut st = StrTableBuilder::new();
    let mut e = Enc::default();
    match artifact {
        Artifact::Discovery(d) => enc_discovery(&mut e, d),
        Artifact::Stage1(s) => enc_stage1(&mut e, &mut st, s),
        Artifact::Stage2(s) => enc_stage2(&mut e, &mut st, s),
        Artifact::Stage3(s) => enc_stage3(&mut e, &mut st, s),
        Artifact::Stage4(s) => enc_stage4(&mut e, s),
        Artifact::Analysis(_) => return None, // memory-only
    }
    Some((st, e))
}

/// Encode a stage artifact as a complete FFB container. `None` for
/// memory-only kinds (analysis).
pub fn encode_artifact(artifact: &Artifact) -> Option<Vec<u8>> {
    let (st, e) = artifact_sections(artifact)?;
    let mut b = FfbBuilder::new(artifact.kind().byte());
    b.section(SEC_STRINGS, st.encode());
    b.section(SEC_RECORDS, e.0);
    Some(b.finish())
}

/// Stream a stage artifact to `w` as an FFB container, byte-identical
/// to [`encode_artifact`] without ever assembling the container in
/// memory (the store's disk-write path). `Ok(false)` — with the stream
/// untouched — for memory-only kinds.
pub fn write_artifact_to<W: std::io::Read + std::io::Write + std::io::Seek>(
    w: W,
    artifact: &Artifact,
) -> Result<bool, String> {
    let Some((st, e)) = artifact_sections(artifact) else {
        return Ok(false);
    };
    let mut fw = FfbWriter::new(w, artifact.kind().byte(), &[SEC_STRINGS, SEC_RECORDS])?;
    fw.section(SEC_STRINGS, &st.encode())?;
    fw.section(SEC_RECORDS, &e.0)?;
    fw.finish()?;
    Ok(true)
}

/// Decode a stage-cache container. Stricter than [`Ffb::parse`]: the
/// kind byte must match and the build tag must equal the running
/// binary's — an artifact cache is never shared across builds.
pub fn decode_artifact(bytes: &[u8], kind: ArtifactKind) -> Result<Artifact, String> {
    let ffb = Ffb::parse(bytes)?;
    if ffb.build_tag != build_tag() {
        return Err("artifact was written by a different build".to_string());
    }
    if ffb.kind != kind.byte() {
        return Err(format!("artifact kind byte {} is not {:?}", ffb.kind, kind));
    }
    let st = StrTable::parse(ffb.section(SEC_STRINGS)?)?;
    let mut d = Dec::new(ffb.section(SEC_RECORDS)?);
    let artifact = match kind {
        ArtifactKind::Discovery => Artifact::Discovery(Arc::new(dec_discovery(&mut d)?)),
        ArtifactKind::Stage1 => Artifact::Stage1(Arc::new(dec_stage1(&mut d, &st)?)),
        ArtifactKind::Stage2 => Artifact::Stage2(Arc::new(dec_stage2(&mut d, &st)?)),
        ArtifactKind::Stage3 => Artifact::Stage3(Arc::new(dec_stage3(&mut d, &st)?)),
        ArtifactKind::Stage4 => Artifact::Stage4(Arc::new(dec_stage4(&mut d)?)),
        ArtifactKind::Analysis => return Err("analysis artifacts are memory-only".to_string()),
    };
    d.finish()?;
    Ok(artifact)
}

fn internal_fn_index(f: InternalFn) -> u8 {
    InternalFn::all().iter().position(|&g| g == f).expect("InternalFn::all is exhaustive") as u8
}

fn internal_fn_from_index(i: u8) -> Result<InternalFn, String> {
    InternalFn::all().get(i as usize).copied().ok_or_else(|| format!("bad InternalFn index {i}"))
}

fn enc_api(e: &mut Enc, st: &mut StrTableBuilder, api: ApiFn) {
    e.u32(st.add_static(api.name()));
}

fn dec_api(d: &mut Dec<'_>, st: &StrTable) -> Result<ApiFn, String> {
    let name = st.get(d.u32()?)?;
    ApiFn::from_name(name).ok_or_else(|| format!("unknown ApiFn '{name}'"))
}

fn enc_wait_reason(e: &mut Enc, r: WaitReason) {
    e.u8(match r {
        WaitReason::Explicit => 0,
        WaitReason::Implicit => 1,
        WaitReason::Conditional => 2,
        WaitReason::Private => 3,
    });
}

fn dec_wait_reason(d: &mut Dec<'_>) -> Result<WaitReason, String> {
    Ok(match d.u8()? {
        0 => WaitReason::Explicit,
        1 => WaitReason::Implicit,
        2 => WaitReason::Conditional,
        3 => WaitReason::Private,
        b => return Err(format!("bad WaitReason byte {b:#04x}")),
    })
}

fn enc_direction(e: &mut Enc, dir: Direction) {
    e.u8(match dir {
        Direction::HtoD => 0,
        Direction::DtoH => 1,
        Direction::DtoD => 2,
    });
}

fn dec_direction(d: &mut Dec<'_>) -> Result<Direction, String> {
    Ok(match d.u8()? {
        0 => Direction::HtoD,
        1 => Direction::DtoH,
        2 => Direction::DtoD,
        b => return Err(format!("bad Direction byte {b:#04x}")),
    })
}

fn enc_loc(e: &mut Enc, st: &mut StrTableBuilder, loc: &SourceLoc) {
    e.u32(st.add_static(loc.file));
    e.u32(loc.line);
}

fn dec_loc(d: &mut Dec<'_>, st: &StrTable) -> Result<SourceLoc, String> {
    // `SourceLoc.file` is `&'static str`; table entries were interned at
    // parse time (`crate::intern`), so artifacts loaded from disk share
    // one address space with live traces — and with the analysis layer's
    // interned site labels — at zero per-record cost.
    let file = st.get(d.u32()?)?;
    let line = d.u32()?;
    Ok(SourceLoc { file, line })
}

fn enc_op(e: &mut Enc, op: &OpInstance) {
    e.u64(op.sig);
    e.u64(op.occ);
}

fn dec_op(d: &mut Dec<'_>) -> Result<OpInstance, String> {
    Ok(OpInstance { sig: d.u64()?, occ: d.u64()? })
}

fn enc_stack(e: &mut Enc, st: &mut StrTableBuilder, stack: &StackTrace) {
    e.u64(stack.frames.len() as u64);
    for frame in &stack.frames {
        e.u32(st.add(&frame.function));
        enc_loc(e, st, &frame.callsite);
    }
}

fn dec_stack(d: &mut Dec<'_>, st: &StrTable) -> Result<StackTrace, String> {
    let n = d.seq_len()?;
    let mut frames = Vec::with_capacity(n);
    for _ in 0..n {
        // `Frame.function` is a Cow, so borrowing the interned text
        // avoids a per-frame String.
        let function = st.get(d.u32()?)?;
        let callsite = dec_loc(d, st)?;
        frames.push(Frame::new(function, callsite));
    }
    Ok(StackTrace { frames })
}

fn enc_discovery(e: &mut Enc, disc: &Discovery) {
    e.u8(internal_fn_index(disc.sync_fn));
    let mut waits: Vec<(InternalFn, u64)> = disc.waits.iter().map(|(&f, &ns)| (f, ns)).collect();
    waits.sort();
    e.u64(waits.len() as u64);
    for (f, ns) in waits {
        e.u8(internal_fn_index(f));
        e.u64(ns);
    }
}

fn dec_discovery(d: &mut Dec<'_>) -> Result<Discovery, String> {
    let sync_fn = internal_fn_from_index(d.u8()?)?;
    let n = d.seq_len()?;
    let mut waits = HashMap::with_capacity(n);
    for _ in 0..n {
        let f = internal_fn_from_index(d.u8()?)?;
        let ns = d.u64()?;
        waits.insert(f, ns);
    }
    Ok(Discovery { sync_fn, waits })
}

fn enc_stage1(e: &mut Enc, st: &mut StrTableBuilder, s: &Stage1Result) {
    e.u64(s.exec_time_ns);
    e.u64(s.total_wait_ns);
    e.u64(s.sync_hits);
    let mut apis: Vec<(ApiFn, u64)> = s.sync_apis.iter().map(|(&a, &n)| (a, n)).collect();
    apis.sort();
    e.u64(apis.len() as u64);
    for (api, hits) in apis {
        enc_api(e, st, api);
        e.u64(hits);
    }
}

fn dec_stage1(d: &mut Dec<'_>, st: &StrTable) -> Result<Stage1Result, String> {
    let exec_time_ns = d.u64()?;
    let total_wait_ns = d.u64()?;
    let sync_hits = d.u64()?;
    let n = d.seq_len()?;
    let mut sync_apis = HashMap::with_capacity(n);
    for _ in 0..n {
        let api = dec_api(d, st)?;
        let hits = d.u64()?;
        sync_apis.insert(api, hits);
    }
    Ok(Stage1Result { exec_time_ns, sync_apis, total_wait_ns, sync_hits })
}

fn enc_transfer(e: &mut Enc, t: &TransferRec) {
    enc_direction(e, t.dir);
    e.u64(t.bytes);
    e.u64(t.host);
    e.u64(t.dev);
    e.bool(t.pinned);
    e.bool(t.is_async);
}

fn dec_transfer(d: &mut Dec<'_>) -> Result<TransferRec, String> {
    Ok(TransferRec {
        dir: dec_direction(d)?,
        bytes: d.u64()?,
        host: d.u64()?,
        dev: d.u64()?,
        pinned: d.bool()?,
        is_async: d.bool()?,
    })
}

fn enc_call(e: &mut Enc, st: &mut StrTableBuilder, c: &TracedCall) {
    e.u64(c.seq as u64);
    enc_api(e, st, c.api);
    enc_loc(e, st, &c.site);
    enc_stack(e, st, &c.stack);
    e.u64(c.sig);
    e.u64(c.folded_sig);
    e.u64(c.occ);
    e.u64(c.enter_ns);
    e.u64(c.exit_ns);
    e.u64(c.wait_ns);
    e.opt(&c.wait_reason, |e, &r| enc_wait_reason(e, r));
    e.opt(&c.transfer, enc_transfer);
    e.bool(c.is_launch);
}

fn dec_call(d: &mut Dec<'_>, st: &StrTable) -> Result<TracedCall, String> {
    Ok(TracedCall {
        seq: d.u64()? as usize,
        api: dec_api(d, st)?,
        site: dec_loc(d, st)?,
        stack: dec_stack(d, st)?,
        sig: d.u64()?,
        folded_sig: d.u64()?,
        occ: d.u64()?,
        enter_ns: d.u64()?,
        exit_ns: d.u64()?,
        wait_ns: d.u64()?,
        wait_reason: d.opt(dec_wait_reason)?,
        transfer: d.opt(dec_transfer)?,
        is_launch: d.bool()?,
    })
}

fn enc_stage2(e: &mut Enc, st: &mut StrTableBuilder, s: &Stage2Result) {
    e.u64(s.exec_time_ns);
    e.u64(s.calls.len() as u64);
    for c in &s.calls {
        enc_call(e, st, c);
    }
}

fn dec_stage2(d: &mut Dec<'_>, st: &StrTable) -> Result<Stage2Result, String> {
    let exec_time_ns = d.u64()?;
    let n = d.seq_len()?;
    let mut calls = Vec::with_capacity(n);
    for _ in 0..n {
        calls.push(dec_call(d, st)?);
    }
    Ok(Stage2Result { exec_time_ns, calls })
}

fn enc_op_set(e: &mut Enc, set: &HashSet<OpInstance>) {
    let mut ops: Vec<OpInstance> = set.iter().copied().collect();
    ops.sort();
    e.u64(ops.len() as u64);
    for op in &ops {
        enc_op(e, op);
    }
}

fn dec_op_set(d: &mut Dec<'_>) -> Result<HashSet<OpInstance>, String> {
    let n = d.seq_len()?;
    let mut set = HashSet::with_capacity(n);
    for _ in 0..n {
        set.insert(dec_op(d)?);
    }
    Ok(set)
}

fn enc_stage3(e: &mut Enc, st: &mut StrTableBuilder, s: &Stage3Result) {
    enc_op_set(e, &s.required_syncs);
    enc_op_set(e, &s.observed_syncs);
    e.u64(s.accesses.len() as u64);
    for a in &s.accesses {
        enc_op(e, &a.sync);
        enc_loc(e, st, &a.access_site);
        e.u64(a.rough_gap_ns);
    }
    e.u64(s.duplicates.len() as u64);
    for dup in &s.duplicates {
        enc_op(e, &dup.op);
        enc_loc(e, st, &dup.site);
        enc_loc(e, st, &dup.first_site);
        e.u64(dup.bytes);
        e.u128(dup.digest.0);
    }
    let mut sites: Vec<SourceLoc> = s.first_use_sites.iter().copied().collect();
    sites.sort();
    e.u64(sites.len() as u64);
    for site in &sites {
        enc_loc(e, st, site);
    }
    e.u64(s.hashed_bytes);
    e.u64(s.exec_time_sync_ns);
    e.u64(s.exec_time_hash_ns);
    e.u64(s.exec_time_ns);
}

fn dec_stage3(d: &mut Dec<'_>, st: &StrTable) -> Result<Stage3Result, String> {
    let required_syncs = dec_op_set(d)?;
    let observed_syncs = dec_op_set(d)?;
    let n = d.seq_len()?;
    let mut accesses = Vec::with_capacity(n);
    for _ in 0..n {
        accesses.push(ProtectedAccess {
            sync: dec_op(d)?,
            access_site: dec_loc(d, st)?,
            rough_gap_ns: d.u64()?,
        });
    }
    let n = d.seq_len()?;
    let mut duplicates = Vec::with_capacity(n);
    for _ in 0..n {
        duplicates.push(DuplicateTransfer {
            op: dec_op(d)?,
            site: dec_loc(d, st)?,
            first_site: dec_loc(d, st)?,
            bytes: d.u64()?,
            digest: Digest(d.u128()?),
        });
    }
    let n = d.seq_len()?;
    let mut first_use_sites = HashSet::with_capacity(n);
    for _ in 0..n {
        first_use_sites.insert(dec_loc(d, st)?);
    }
    Ok(Stage3Result {
        required_syncs,
        observed_syncs,
        accesses,
        duplicates,
        first_use_sites,
        hashed_bytes: d.u64()?,
        exec_time_sync_ns: d.u64()?,
        exec_time_hash_ns: d.u64()?,
        exec_time_ns: d.u64()?,
    })
}

/// Stage 4 is stored columnar — `sig[]`, `occ[]`, `first_use_ns[]` —
/// so the sync-use gap table reads back as three straight column copies.
fn enc_stage4(e: &mut Enc, s: &Stage4Result) {
    let mut gaps: Vec<(OpInstance, u64)> = s.first_use_ns.iter().map(|(&k, &v)| (k, v)).collect();
    gaps.sort();
    e.u64(gaps.len() as u64);
    for (op, _) in &gaps {
        e.u64(op.sig);
    }
    for (op, _) in &gaps {
        e.u64(op.occ);
    }
    for (_, ns) in &gaps {
        e.u64(*ns);
    }
    e.u64(s.exec_time_ns);
}

fn dec_stage4(d: &mut Dec<'_>) -> Result<Stage4Result, String> {
    let n = d.col_len(24)?;
    let sig = d.col_u64(n)?;
    let occ = d.col_u64(n)?;
    let ns = d.col_u64(n)?;
    let mut first_use_ns = HashMap::with_capacity(n);
    for i in 0..n {
        first_use_ns.insert(OpInstance { sig: sig.at(i), occ: occ.at(i) }, ns.at(i));
    }
    Ok(Stage4Result { first_use_ns, exec_time_ns: d.u64()? })
}

/// Reusable zero-allocation reader for a Stage 4 container: after one
/// warmup sizes the column vectors, repeat reads touch the heap zero
/// times (asserted by `bench_codec --smoke`).
#[derive(Default)]
pub struct Stage4Cols {
    pub sig: Vec<u64>,
    pub occ: Vec<u64>,
    pub first_use_ns: Vec<u64>,
    pub exec_time_ns: u64,
}

impl Stage4Cols {
    pub fn new() -> Self {
        Stage4Cols::default()
    }

    pub fn len(&self) -> usize {
        self.sig.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sig.is_empty()
    }

    /// One pass over a whole Stage 4 FFB file into reused columns.
    pub fn read(&mut self, file: &[u8]) -> Result<(), String> {
        self.read_view(&FfbView::parse(file)?)
    }

    /// Same, over an already-validated container view (so one parse can
    /// feed several readers).
    pub fn read_view(&mut self, view: &FfbView<'_>) -> Result<(), String> {
        view.expect_kind(ArtifactKind::Stage4.byte(), "stage4")?;
        let mut d = Dec::new(view.section(SEC_RECORDS)?);
        let n = d.col_len(24)?;
        extend_u64s(&mut self.sig, d.col_u64(n)?);
        extend_u64s(&mut self.occ, d.col_u64(n)?);
        extend_u64s(&mut self.first_use_ns, d.col_u64(n)?);
        self.exec_time_ns = d.u64()?;
        d.finish()
    }
}

// ---------------------------------------------------------------------------
// Borrowed scratch readers — zero steady-state allocation, every kind
// ---------------------------------------------------------------------------
//
// Owned decoding (`decode_artifact`) materializes Vec/HashMap-heavy
// records — ~60k allocations for a 20k-call Stage-2 trace, dominated by
// one `Vec<Frame>` per call. The readers below run the same validated
// pass over an `FfbView` into reused flat columns (stacks flatten into
// one shared frame table); after a warmup read sizes the vectors,
// repeat reads touch the heap zero times, for *all* artifact kinds —
// asserted by `bench_codec --smoke`.

/// Reusable zero-allocation reader for a Discovery container.
#[derive(Default)]
pub struct DiscoveryCols {
    /// The funnel everything waits through. `None` only before the
    /// first successful read.
    pub sync_fn: Option<InternalFn>,
    pub wait_fns: Vec<InternalFn>,
    pub wait_ns: Vec<u64>,
}

impl DiscoveryCols {
    pub fn new() -> Self {
        DiscoveryCols::default()
    }

    pub fn len(&self) -> usize {
        self.wait_fns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.wait_fns.is_empty()
    }

    pub fn read(&mut self, file: &[u8]) -> Result<(), String> {
        self.read_view(&FfbView::parse(file)?)
    }

    pub fn read_view(&mut self, view: &FfbView<'_>) -> Result<(), String> {
        view.expect_kind(ArtifactKind::Discovery.byte(), "discovery")?;
        let mut d = Dec::new(view.section(SEC_RECORDS)?);
        self.sync_fn = Some(internal_fn_from_index(d.u8()?)?);
        let n = d.seq_len()?;
        self.wait_fns.clear();
        self.wait_ns.clear();
        for _ in 0..n {
            self.wait_fns.push(internal_fn_from_index(d.u8()?)?);
            self.wait_ns.push(d.u64()?);
        }
        d.finish()
    }
}

/// Reusable zero-allocation reader for a Stage 1 container.
#[derive(Default)]
pub struct Stage1Cols {
    pub exec_time_ns: u64,
    pub total_wait_ns: u64,
    pub sync_hits: u64,
    /// Synchronizing APIs in canonical (sorted) encode order, paired
    /// with `api_hits`.
    pub apis: Vec<ApiFn>,
    pub api_hits: Vec<u64>,
    strings: StrTable,
}

impl Stage1Cols {
    pub fn new() -> Self {
        Stage1Cols::default()
    }

    pub fn len(&self) -> usize {
        self.apis.len()
    }

    pub fn is_empty(&self) -> bool {
        self.apis.is_empty()
    }

    pub fn read(&mut self, file: &[u8]) -> Result<(), String> {
        self.read_view(&FfbView::parse(file)?)
    }

    pub fn read_view(&mut self, view: &FfbView<'_>) -> Result<(), String> {
        view.expect_kind(ArtifactKind::Stage1.byte(), "stage1")?;
        view.strings_into(&mut self.strings)?;
        let mut d = Dec::new(view.section(SEC_RECORDS)?);
        self.exec_time_ns = d.u64()?;
        self.total_wait_ns = d.u64()?;
        self.sync_hits = d.u64()?;
        let n = d.seq_len()?;
        self.apis.clear();
        self.api_hits.clear();
        for _ in 0..n {
            self.apis.push(dec_api(&mut d, &self.strings)?);
            self.api_hits.push(d.u64()?);
        }
        d.finish()
    }
}

/// One traced call in a [`Stage2Cols`] read: the full [`TracedCall`]
/// payload with the stack flattened into the shared frame table —
/// recover it with [`Stage2Cols::frames_of`].
#[derive(Debug, Clone, Copy)]
pub struct CallRow {
    pub seq: u64,
    pub api: ApiFn,
    pub site: SourceLoc,
    pub sig: u64,
    pub folded_sig: u64,
    pub occ: u64,
    pub enter_ns: u64,
    pub exit_ns: u64,
    pub wait_ns: u64,
    pub wait_reason: Option<WaitReason>,
    pub transfer: Option<TransferRec>,
    pub is_launch: bool,
    frame_start: u32,
    frame_len: u32,
}

/// One stack frame in the shared frame table: interned function symbol
/// plus call site — no per-frame `String`, no per-call `Vec`.
#[derive(Debug, Clone, Copy)]
pub struct FrameRow {
    pub function: Sym,
    pub callsite: SourceLoc,
}

/// Reusable zero-allocation reader for a Stage 2 container — the
/// replacement for the ~60k-allocation owned decode on the trace-heavy
/// path. Stacks land in one shared `frames` table; each [`CallRow`]
/// holds a range into it.
#[derive(Default)]
pub struct Stage2Cols {
    pub exec_time_ns: u64,
    pub calls: Vec<CallRow>,
    pub frames: Vec<FrameRow>,
    strings: StrTable,
}

impl Stage2Cols {
    pub fn new() -> Self {
        Stage2Cols::default()
    }

    pub fn len(&self) -> usize {
        self.calls.len()
    }

    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }

    /// The stack frames of `call`, outermost first (encode order).
    pub fn frames_of(&self, call: &CallRow) -> &[FrameRow] {
        let start = call.frame_start as usize;
        &self.frames[start..start + call.frame_len as usize]
    }

    pub fn read(&mut self, file: &[u8]) -> Result<(), String> {
        self.read_view(&FfbView::parse(file)?)
    }

    pub fn read_view(&mut self, view: &FfbView<'_>) -> Result<(), String> {
        view.expect_kind(ArtifactKind::Stage2.byte(), "stage2")?;
        view.strings_into(&mut self.strings)?;
        let mut d = Dec::new(view.section(SEC_RECORDS)?);
        self.exec_time_ns = d.u64()?;
        let n = d.seq_len()?;
        self.calls.clear();
        self.frames.clear();
        for _ in 0..n {
            let seq = d.u64()?;
            let api = dec_api(&mut d, &self.strings)?;
            let site = dec_loc(&mut d, &self.strings)?;
            let frame_start =
                u32::try_from(self.frames.len()).map_err(|_| "frame table overflow".to_string())?;
            let nframes = d.seq_len()?;
            for _ in 0..nframes {
                let function = self.strings.sym(d.u32()?)?;
                let callsite = dec_loc(&mut d, &self.strings)?;
                self.frames.push(FrameRow { function, callsite });
            }
            self.calls.push(CallRow {
                seq,
                api,
                site,
                sig: d.u64()?,
                folded_sig: d.u64()?,
                occ: d.u64()?,
                enter_ns: d.u64()?,
                exit_ns: d.u64()?,
                wait_ns: d.u64()?,
                wait_reason: d.opt(dec_wait_reason)?,
                transfer: d.opt(dec_transfer)?,
                is_launch: d.bool()?,
                frame_start,
                frame_len: nframes as u32,
            });
        }
        d.finish()
    }
}

/// A protected-data access row in a [`Stage3Cols`] read.
#[derive(Debug, Clone, Copy)]
pub struct AccessRow {
    pub sync: OpInstance,
    pub access_site: SourceLoc,
    pub rough_gap_ns: u64,
}

/// A duplicate-transfer row in a [`Stage3Cols`] read.
#[derive(Debug, Clone, Copy)]
pub struct DuplicateRow {
    pub op: OpInstance,
    pub site: SourceLoc,
    pub first_site: SourceLoc,
    pub bytes: u64,
    pub digest: Digest,
}

/// Reusable zero-allocation reader for a Stage 3 container. The op sets
/// come back as sorted vectors (canonical encode order), which callers
/// probe by binary search instead of rebuilding hash sets.
#[derive(Default)]
pub struct Stage3Cols {
    /// Sorted by `(sig, occ)`.
    pub required_syncs: Vec<OpInstance>,
    /// Sorted by `(sig, occ)`.
    pub observed_syncs: Vec<OpInstance>,
    pub accesses: Vec<AccessRow>,
    pub duplicates: Vec<DuplicateRow>,
    /// Sorted (canonical encode order).
    pub first_use_sites: Vec<SourceLoc>,
    pub hashed_bytes: u64,
    pub exec_time_sync_ns: u64,
    pub exec_time_hash_ns: u64,
    pub exec_time_ns: u64,
    strings: StrTable,
}

impl Stage3Cols {
    pub fn new() -> Self {
        Stage3Cols::default()
    }

    pub fn read(&mut self, file: &[u8]) -> Result<(), String> {
        self.read_view(&FfbView::parse(file)?)
    }

    pub fn read_view(&mut self, view: &FfbView<'_>) -> Result<(), String> {
        view.expect_kind(ArtifactKind::Stage3.byte(), "stage3")?;
        view.strings_into(&mut self.strings)?;
        let mut d = Dec::new(view.section(SEC_RECORDS)?);
        for set in [&mut self.required_syncs, &mut self.observed_syncs] {
            let n = d.seq_len()?;
            set.clear();
            for _ in 0..n {
                set.push(dec_op(&mut d)?);
            }
        }
        let n = d.seq_len()?;
        self.accesses.clear();
        for _ in 0..n {
            self.accesses.push(AccessRow {
                sync: dec_op(&mut d)?,
                access_site: dec_loc(&mut d, &self.strings)?,
                rough_gap_ns: d.u64()?,
            });
        }
        let n = d.seq_len()?;
        self.duplicates.clear();
        for _ in 0..n {
            self.duplicates.push(DuplicateRow {
                op: dec_op(&mut d)?,
                site: dec_loc(&mut d, &self.strings)?,
                first_site: dec_loc(&mut d, &self.strings)?,
                bytes: d.u64()?,
                digest: Digest(d.u128()?),
            });
        }
        let n = d.seq_len()?;
        self.first_use_sites.clear();
        for _ in 0..n {
            self.first_use_sites.push(dec_loc(&mut d, &self.strings)?);
        }
        self.hashed_bytes = d.u64()?;
        self.exec_time_sync_ns = d.u64()?;
        self.exec_time_hash_ns = d.u64()?;
        self.exec_time_ns = d.u64()?;
        d.finish()
    }
}

// ---------------------------------------------------------------------------
// Generic JSON documents (reports, telemetry, converted files)
// ---------------------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_ARR: u8 = 6;
const TAG_OBJ: u8 = 7;

/// Mirror of the JSON parser's recursion guard.
const MAX_DOC_DEPTH: usize = 512;

/// Encode any [`Json`] document as an FFB container ([`KIND_DOC`]).
/// All string content — values and object keys — goes through the
/// string table, so documents with repeated keys (every "cells" array)
/// store each key once. Floats are stored as raw bits; together with
/// exact `i128` integers this makes bin→json re-rendering byte-identical
/// to the original pretty form.
pub fn encode_doc(doc: &Json) -> Vec<u8> {
    let mut st = StrTableBuilder::new();
    let mut e = Enc::default();
    enc_json(&mut e, &mut st, doc);
    let mut b = FfbBuilder::new(KIND_DOC);
    b.section(SEC_STRINGS, st.encode());
    b.section(SEC_DOC, e.0);
    b.finish()
}

/// Stream a [`Json`] document to `w` as a [`KIND_DOC`] container,
/// byte-identical to [`encode_doc`] without assembling the container
/// (the `--format bin` export path).
pub fn write_doc_to<W: std::io::Read + std::io::Write + std::io::Seek>(
    w: W,
    doc: &Json,
) -> Result<(), String> {
    let mut st = StrTableBuilder::new();
    let mut e = Enc::default();
    enc_json(&mut e, &mut st, doc);
    let mut fw = FfbWriter::new(w, KIND_DOC, &[SEC_STRINGS, SEC_DOC])?;
    fw.section(SEC_STRINGS, &st.encode())?;
    fw.section(SEC_DOC, &e.0)?;
    fw.finish()?;
    Ok(())
}

/// Decode a [`KIND_DOC`] container back into a [`Json`] tree. Strings
/// come back as [`Json::Sym`] over the file's interned table — content-
/// equal to the original `Str` values and serialized identically.
pub fn decode_doc(bytes: &[u8]) -> Result<Json, String> {
    let ffb = Ffb::parse(bytes)?;
    if ffb.kind != KIND_DOC {
        return Err(format!("not a document container (kind {})", ffb.kind));
    }
    let st = StrTable::parse(ffb.section(SEC_STRINGS)?)?;
    let mut d = Dec::new(ffb.section(SEC_DOC)?);
    let doc = dec_json(&mut d, &st, 0)?;
    d.finish()?;
    Ok(doc)
}

fn enc_json(e: &mut Enc, st: &mut StrTableBuilder, v: &Json) {
    match v {
        Json::Null => e.u8(TAG_NULL),
        Json::Bool(false) => e.u8(TAG_FALSE),
        Json::Bool(true) => e.u8(TAG_TRUE),
        Json::Int(i) => {
            e.u8(TAG_INT);
            e.u128(*i as u128);
        }
        Json::Float(f) => {
            e.u8(TAG_FLOAT);
            e.f64(*f);
        }
        Json::Str(s) => {
            e.u8(TAG_STR);
            let id = st.add(s);
            e.u32(id);
        }
        Json::Static(s) => {
            e.u8(TAG_STR);
            let id = st.add_static(s);
            e.u32(id);
        }
        Json::Sym(sym) => {
            e.u8(TAG_STR);
            let id = st.add_sym(*sym);
            e.u32(id);
        }
        Json::Arr(items) => {
            e.u8(TAG_ARR);
            e.u32(items.len() as u32);
            for item in items {
                enc_json(e, st, item);
            }
        }
        Json::Obj(fields) => {
            e.u8(TAG_OBJ);
            e.u32(fields.len() as u32);
            for (k, v) in fields {
                let id = st.add(k);
                e.u32(id);
                enc_json(e, st, v);
            }
        }
    }
}

fn dec_json(d: &mut Dec<'_>, st: &StrTable, depth: usize) -> Result<Json, String> {
    if depth > MAX_DOC_DEPTH {
        return Err("document nested too deeply".to_string());
    }
    Ok(match d.u8()? {
        TAG_NULL => Json::Null,
        TAG_FALSE => Json::Bool(false),
        TAG_TRUE => Json::Bool(true),
        TAG_INT => Json::Int(d.u128()? as i128),
        TAG_FLOAT => Json::Float(d.f64()?),
        TAG_STR => Json::Sym(st.sym(d.u32()?)?),
        TAG_ARR => {
            let n = d.u32()? as usize;
            if n > d.remaining() {
                return Err(format!("implausible array length {n}"));
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(dec_json(d, st, depth + 1)?);
            }
            Json::Arr(items)
        }
        TAG_OBJ => {
            let n = d.u32()? as usize;
            if n > d.remaining() {
                return Err(format!("implausible object length {n}"));
            }
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                let key = st.get(d.u32()?)?.to_string();
                fields.push((key, dec_json(d, st, depth + 1)?));
            }
            Json::Obj(fields)
        }
        b => return Err(format!("bad value tag {b:#04x}")),
    })
}

// ---------------------------------------------------------------------------
// Typed sweep matrices (binary shards and sweep exports)
// ---------------------------------------------------------------------------

/// Encode a sweep matrix as a [`KIND_SWEEP`] container: one header
/// section (app, workload, layout, shard, axes) and one columnar cells
/// section. `Err` if any cell's assignment disagrees with the axes (a
/// hand-built matrix; `run_sweep` can't produce one).
pub fn encode_sweep(m: &SweepMatrix) -> Result<Vec<u8>, String> {
    let (st, h) = sweep_header_sections(m)?;
    let mut c = Enc::default();
    emit_sweep_cells(m, |b| {
        c.0.extend_from_slice(b);
        Ok(())
    })?;
    let mut b = FfbBuilder::new(KIND_SWEEP);
    b.section(SEC_STRINGS, st.encode());
    b.section(SEC_SWEEP_HEADER, h.0);
    b.section(SEC_SWEEP_CELLS, c.0);
    Ok(b.finish())
}

/// Stream a sweep matrix to `w` as a [`KIND_SWEEP`] container,
/// byte-identical to [`encode_sweep`]. Every string in the container
/// comes from the *header* (cell assignments are validated to mirror
/// the axis fields), so the string table closes before any cell is
/// visited and the cells section streams column-wise through the
/// writer's chunk buffer — the dominant section of a big grid never
/// materializes, bounding `sweep --format bin` writer memory by the
/// header plus one 64 KiB chunk.
pub fn write_sweep_to<W: std::io::Read + std::io::Write + std::io::Seek>(
    w: W,
    m: &SweepMatrix,
) -> Result<(), String> {
    let (st, h) = sweep_header_sections(m)?;
    let mut fw = FfbWriter::new(w, KIND_SWEEP, &[SEC_STRINGS, SEC_SWEEP_HEADER, SEC_SWEEP_CELLS])?;
    fw.section(SEC_STRINGS, &st.encode())?;
    fw.section(SEC_SWEEP_HEADER, &h.0)?;
    fw.begin_section(SEC_SWEEP_CELLS)?;
    emit_sweep_cells(m, |b| fw.write(b))?;
    fw.end_section()?;
    fw.finish()?;
    Ok(())
}

/// Validate cell assignments against the axes and build the string
/// table + header section shared by the one-shot and streaming sweep
/// encoders.
fn sweep_header_sections(m: &SweepMatrix) -> Result<(StrTableBuilder, Enc), String> {
    for c in &m.cells {
        if c.assignment.len() != m.axes.len()
            || c.assignment.iter().zip(&m.axes).any(|((k, _), a)| *k != a.field)
        {
            return Err(format!("cell {} assignment does not match the axes", c.index));
        }
    }
    let mut st = StrTableBuilder::new();
    let mut h = Enc::default();
    h.u32(st.add(&m.app_name));
    h.u32(st.add(&m.workload));
    h.u8(match m.layout {
        AxisLayout::Cartesian => 0,
        AxisLayout::Paired => 1,
    });
    h.opt(&m.shard, |h, s| {
        h.u64(s.k as u64);
        h.u64(s.n as u64);
    });
    h.u64(m.total_cells as u64);
    h.u32(m.axes.len() as u32);
    for a in &m.axes {
        let id = st.add(&a.field);
        h.u32(id);
        h.u64(a.values.len() as u64);
        for &v in &a.values {
            h.u64(v);
        }
    }
    Ok((st, h))
}

/// Emit the cells section column-by-column through `put` — the byte
/// stream both sweep encoders share.
fn emit_sweep_cells(
    m: &SweepMatrix,
    mut put: impl FnMut(&[u8]) -> Result<(), String>,
) -> Result<(), String> {
    put(&(m.cells.len() as u64).to_le_bytes())?;
    put(&(m.axes.len() as u32).to_le_bytes())?;
    for cell in &m.cells {
        put(&(cell.index as u64).to_le_bytes())?;
    }
    for axis in 0..m.axes.len() {
        for cell in &m.cells {
            put(&cell.assignment[axis].1.to_le_bytes())?;
        }
    }
    for cell in &m.cells {
        put(&cell.baseline_exec_ns.to_le_bytes())?;
    }
    for cell in &m.cells {
        put(&cell.total_benefit_ns.to_le_bytes())?;
    }
    for cell in &m.cells {
        put(&cell.benefit_pct.to_bits().to_le_bytes())?;
    }
    for cell in &m.cells {
        put(&(cell.problem_count as u64).to_le_bytes())?;
    }
    for cell in &m.cells {
        put(&(cell.sync_issues as u64).to_le_bytes())?;
    }
    for cell in &m.cells {
        put(&(cell.transfer_issues as u64).to_le_bytes())?;
    }
    for cell in &m.cells {
        put(&(cell.sequence_count as u64).to_le_bytes())?;
    }
    for cell in &m.cells {
        put(&cell.collection_overhead_factor.to_bits().to_le_bytes())?;
    }
    Ok(())
}

/// Header fields of a sweep container, decoded borrowed: strings stay
/// interned symbols. The per-axis value vectors are the only
/// allocations — headers are tiny; the cells section is the hot part
/// and goes through [`SweepCellCols`].
pub struct SweepHeaderRef {
    pub app: Sym,
    pub workload: Sym,
    pub layout: AxisLayout,
    /// Raw `(k, n)` shard tag; `None` for a complete sweep.
    pub shard: Option<(u64, u64)>,
    pub total_cells: u64,
    pub axis_fields: Vec<Sym>,
    /// `axis_values[a]` holds axis `a`'s declared values.
    pub axis_values: Vec<Vec<u64>>,
}

/// Decode just the header section of a sweep container. `st` must hold
/// the container's string table (see [`FfbView::strings_into`]).
pub fn read_sweep_header(view: &FfbView<'_>, st: &StrTable) -> Result<SweepHeaderRef, String> {
    view.expect_kind(KIND_SWEEP, "sweep")?;
    let mut h = Dec::new(view.section(SEC_SWEEP_HEADER)?);
    let app = st.sym(h.u32()?)?;
    let workload = st.sym(h.u32()?)?;
    let layout = match h.u8()? {
        0 => AxisLayout::Cartesian,
        1 => AxisLayout::Paired,
        b => return Err(format!("bad layout byte {b:#04x}")),
    };
    let shard = h.opt(|h| Ok((h.u64()?, h.u64()?)))?;
    let total_cells = h.u64()?;
    let n_axes = h.u32()? as usize;
    let mut axis_fields = Vec::with_capacity(n_axes.min(h.remaining()));
    let mut axis_values = Vec::with_capacity(n_axes.min(h.remaining()));
    for _ in 0..n_axes {
        axis_fields.push(st.sym(h.u32()?)?);
        let n = h.col_len(8)?;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(h.u64()?);
        }
        axis_values.push(values);
    }
    h.finish()?;
    Ok(SweepHeaderRef { app, workload, layout, shard, total_cells, axis_fields, axis_values })
}

/// Decode a [`KIND_SWEEP`] container back into a [`SweepMatrix`]. The
/// summary is recomputed from the decoded cells — floats round-trip as
/// raw bits, so the argmin/argmax rows match the producing run exactly.
/// `cache_stats` is diagnostic-only and never serialized.
pub fn decode_sweep(bytes: &[u8]) -> Result<SweepMatrix, String> {
    let view = FfbView::parse(bytes)?;
    view.expect_kind(KIND_SWEEP, "sweep")?;
    let st = StrTable::parse(view.section(SEC_STRINGS)?)?;
    let hdr = read_sweep_header(&view, &st)?;
    let app_name = hdr.app.resolve().to_string();
    let workload = hdr.workload.resolve().to_string();
    let layout = hdr.layout;
    let shard = match hdr.shard {
        None => None,
        Some((k, n)) => {
            let k = usize::try_from(k).map_err(|_| "shard k overflow")?;
            let n = usize::try_from(n).map_err(|_| "shard n overflow")?;
            Some(Shard::new(k, n)?)
        }
    };
    let total_cells = usize::try_from(hdr.total_cells).map_err(|_| "total_cells overflow")?;
    let axes: Vec<Axis> = hdr
        .axis_fields
        .iter()
        .zip(hdr.axis_values)
        .map(|(f, values)| Axis { field: f.resolve().to_string(), values })
        .collect();

    let mut cols = SweepCellCols::new();
    cols.read_view(&view)?;
    if cols.axes != axes.len() {
        return Err(format!(
            "cells carry {} axes but the header declares {}",
            cols.axes,
            axes.len()
        ));
    }
    let n = cols.len();
    let mut cells = Vec::with_capacity(n);
    for i in 0..n {
        let assignment = axes
            .iter()
            .enumerate()
            .map(|(a, ax)| (ax.field.clone(), cols.axis_values[a * n + i]))
            .collect();
        cells.push(SweepCell {
            index: usize::try_from(cols.index[i]).map_err(|_| "cell index overflow")?,
            assignment,
            baseline_exec_ns: cols.baseline_exec_ns[i],
            total_benefit_ns: cols.total_benefit_ns[i],
            benefit_pct: cols.benefit_pct[i],
            problem_count: cols.problem_count[i] as usize,
            sync_issues: cols.sync_issues[i] as usize,
            transfer_issues: cols.transfer_issues[i] as usize,
            sequence_count: cols.sequence_count[i] as usize,
            collection_overhead_factor: cols.collection_overhead_factor[i],
        });
    }
    let summary: SweepSummary = SweepMatrix::summarize(&cells);
    Ok(SweepMatrix {
        app_name,
        workload,
        axes,
        layout,
        total_cells,
        shard,
        cells,
        summary,
        cache_stats: None,
    })
}

/// Reusable zero-allocation reader for the cells section of a sweep
/// container — the `--merge` and serve-path ingestion hot loop. After a
/// warmup read sizes the vectors, repeat reads allocate nothing.
#[derive(Default)]
pub struct SweepCellCols {
    /// Axes per cell (assignment values are axis-major:
    /// `axis_values[a * len + i]` is cell `i`'s value on axis `a`).
    pub axes: usize,
    pub index: Vec<u64>,
    pub axis_values: Vec<u64>,
    pub baseline_exec_ns: Vec<u64>,
    pub total_benefit_ns: Vec<u64>,
    pub benefit_pct: Vec<f64>,
    pub problem_count: Vec<u64>,
    pub sync_issues: Vec<u64>,
    pub transfer_issues: Vec<u64>,
    pub sequence_count: Vec<u64>,
    pub collection_overhead_factor: Vec<f64>,
}

impl SweepCellCols {
    pub fn new() -> Self {
        SweepCellCols::default()
    }

    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// One pass over a whole sweep FFB file into reused columns.
    pub fn read(&mut self, file: &[u8]) -> Result<(), String> {
        self.read_view(&FfbView::parse(file)?)
    }

    /// Same, over an already-validated container view (the merge fold
    /// parses each shard once and reads header + cells from it).
    pub fn read_view(&mut self, view: &FfbView<'_>) -> Result<(), String> {
        view.expect_kind(KIND_SWEEP, "sweep")?;
        let mut d = Dec::new(view.section(SEC_SWEEP_CELLS)?);
        let n = d.col_len(8)?;
        let n_axes = d.u32()? as usize;
        // 9 fixed columns + one per axis, 8 bytes per element each.
        let cols = n_axes.checked_add(9).ok_or("axis count overflow")?;
        let total = n.checked_mul(8 * cols).ok_or("cells size overflow")?;
        if total > d.remaining() {
            return Err(format!("implausible cell count {n}"));
        }
        self.axes = n_axes;
        extend_u64s(&mut self.index, d.col_u64(n)?);
        self.axis_values.clear();
        for _ in 0..n_axes {
            append_u64s(&mut self.axis_values, d.col_u64(n)?);
        }
        extend_u64s(&mut self.baseline_exec_ns, d.col_u64(n)?);
        extend_u64s(&mut self.total_benefit_ns, d.col_u64(n)?);
        extend_f64s(&mut self.benefit_pct, d.col_f64(n)?);
        extend_u64s(&mut self.problem_count, d.col_u64(n)?);
        extend_u64s(&mut self.sync_issues, d.col_u64(n)?);
        extend_u64s(&mut self.transfer_issues, d.col_u64(n)?);
        extend_u64s(&mut self.sequence_count, d.col_u64(n)?);
        extend_f64s(&mut self.collection_overhead_factor, d.col_f64(n)?);
        d.finish()
    }
}

/// Decode any FFB container into a JSON document: [`KIND_DOC`] directly,
/// [`KIND_SWEEP`] via the typed decoder + [`crate::sweep::sweep_to_json`]
/// (byte-identical to the producing run's `--format json` output).
/// Artifact kinds are cache-internal and not convertible.
pub fn decode_any_doc(bytes: &[u8]) -> Result<Json, String> {
    let ffb = Ffb::parse(bytes)?;
    match ffb.kind {
        KIND_DOC => decode_doc(bytes),
        KIND_SWEEP => Ok(crate::sweep::sweep_to_json(&decode_sweep(bytes)?)),
        k => Err(format!("container kind {k} is not a convertible document")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_loc(line: u32) -> SourceLoc {
        SourceLoc::new("als.cpp", line)
    }

    fn sample_stage2() -> Stage2Result {
        Stage2Result {
            exec_time_ns: 123_456,
            calls: vec![TracedCall {
                seq: 0,
                api: ApiFn::CudaMemcpy,
                site: sample_loc(856),
                stack: StackTrace {
                    frames: vec![
                        Frame::new("main", sample_loc(1)),
                        Frame::new("thrust::copy<float>", sample_loc(856)),
                    ],
                },
                sig: 0xdead_beef,
                folded_sig: 0xfeed_face,
                occ: 3,
                enter_ns: 10,
                exit_ns: 90,
                wait_ns: 40,
                wait_reason: Some(WaitReason::Implicit),
                transfer: Some(TransferRec {
                    dir: Direction::DtoH,
                    bytes: 4096,
                    host: 0x1000,
                    dev: 0x2000,
                    pinned: false,
                    is_async: true,
                }),
                is_launch: false,
            }],
        }
    }

    fn sample_stage3() -> Stage3Result {
        Stage3Result {
            required_syncs: [OpInstance { sig: 1, occ: 0 }].into_iter().collect(),
            observed_syncs: [OpInstance { sig: 1, occ: 0 }, OpInstance { sig: 2, occ: 1 }]
                .into_iter()
                .collect(),
            accesses: vec![ProtectedAccess {
                sync: OpInstance { sig: 1, occ: 0 },
                access_site: sample_loc(901),
                rough_gap_ns: 77,
            }],
            duplicates: vec![DuplicateTransfer {
                op: OpInstance { sig: 9, occ: 2 },
                site: sample_loc(10),
                first_site: sample_loc(5),
                bytes: 1 << 20,
                digest: Digest(0x1234_5678_9abc_def0_1122_3344_5566_7788),
            }],
            first_use_sites: [sample_loc(901), sample_loc(905)].into_iter().collect(),
            hashed_bytes: 1 << 21,
            exec_time_sync_ns: 1000,
            exec_time_hash_ns: 2000,
            exec_time_ns: 3000,
        }
    }

    fn roundtrip(artifact: Artifact) -> Artifact {
        let kind = artifact.kind();
        let bytes = encode_artifact(&artifact).expect("serializable kind");
        decode_artifact(&bytes, kind).expect("decodes")
    }

    #[test]
    fn discovery_roundtrips() {
        let d = Discovery {
            sync_fn: InternalFn::SyncWait,
            waits: [(InternalFn::SyncWait, 500), (InternalFn::Enqueue, 0)].into_iter().collect(),
        };
        match roundtrip(Artifact::Discovery(Arc::new(d.clone()))) {
            Artifact::Discovery(got) => {
                assert_eq!(got.sync_fn, d.sync_fn);
                assert_eq!(got.waits, d.waits);
            }
            other => panic!("wrong kind {:?}", other.kind()),
        }
    }

    #[test]
    fn stage1_roundtrips() {
        let s = Stage1Result {
            exec_time_ns: 42,
            sync_apis: [(ApiFn::CudaFree, 3), (ApiFn::CudaMemcpy, 7)].into_iter().collect(),
            total_wait_ns: 99,
            sync_hits: 10,
        };
        match roundtrip(Artifact::Stage1(Arc::new(s.clone()))) {
            Artifact::Stage1(got) => {
                assert_eq!(got.exec_time_ns, s.exec_time_ns);
                assert_eq!(got.sync_apis, s.sync_apis);
                assert_eq!(got.total_wait_ns, s.total_wait_ns);
                assert_eq!(got.sync_hits, s.sync_hits);
            }
            other => panic!("wrong kind {:?}", other.kind()),
        }
    }

    #[test]
    fn stage2_roundtrips_including_stacks() {
        let s = sample_stage2();
        match roundtrip(Artifact::Stage2(Arc::new(s.clone()))) {
            Artifact::Stage2(got) => {
                assert_eq!(got.exec_time_ns, s.exec_time_ns);
                assert_eq!(got.calls.len(), s.calls.len());
                let (a, b) = (&got.calls[0], &s.calls[0]);
                assert_eq!(a.seq, b.seq);
                assert_eq!(a.api, b.api);
                assert_eq!(a.site, b.site);
                assert_eq!(a.stack, b.stack);
                assert_eq!(a.sig, b.sig);
                assert_eq!(a.folded_sig, b.folded_sig);
                assert_eq!(a.occ, b.occ);
                assert_eq!((a.enter_ns, a.exit_ns, a.wait_ns), (b.enter_ns, b.exit_ns, b.wait_ns));
                assert_eq!(a.wait_reason, b.wait_reason);
                assert_eq!(a.transfer, b.transfer);
                assert_eq!(a.is_launch, b.is_launch);
                // Decoded file names intern to the same address space the
                // rest of the pipeline uses for synthetic addresses.
                assert_eq!(a.site.addr(), b.site.addr());
            }
            other => panic!("wrong kind {:?}", other.kind()),
        }
    }

    #[test]
    fn stage3_roundtrips() {
        let s = sample_stage3();
        match roundtrip(Artifact::Stage3(Arc::new(s.clone()))) {
            Artifact::Stage3(got) => {
                assert_eq!(got.required_syncs, s.required_syncs);
                assert_eq!(got.observed_syncs, s.observed_syncs);
                assert_eq!(got.accesses.len(), 1);
                assert_eq!(got.accesses[0].sync, s.accesses[0].sync);
                assert_eq!(got.accesses[0].access_site, s.accesses[0].access_site);
                assert_eq!(got.duplicates[0].digest, s.duplicates[0].digest);
                assert_eq!(got.first_use_sites, s.first_use_sites);
                assert_eq!(got.hashed_bytes, s.hashed_bytes);
                assert_eq!(got.exec_time_ns, s.exec_time_ns);
            }
            other => panic!("wrong kind {:?}", other.kind()),
        }
    }

    #[test]
    fn stage4_roundtrips() {
        let mut s = Stage4Result::default();
        s.first_use_ns.insert(OpInstance { sig: 5, occ: 0 }, 111);
        s.first_use_ns.insert(OpInstance { sig: 5, occ: 1 }, 222);
        s.exec_time_ns = 7;
        match roundtrip(Artifact::Stage4(Arc::new(s.clone()))) {
            Artifact::Stage4(got) => {
                assert_eq!(got.first_use_ns, s.first_use_ns);
                assert_eq!(got.exec_time_ns, s.exec_time_ns);
            }
            other => panic!("wrong kind {:?}", other.kind()),
        }
    }

    #[test]
    fn encoding_is_independent_of_hash_iteration_order() {
        // Build the same logical map twice with different insertion orders;
        // the encoded bytes must match.
        let mut a = Stage4Result::default();
        let mut b = Stage4Result::default();
        for i in 0..100u64 {
            a.first_use_ns.insert(OpInstance { sig: i, occ: 0 }, i * 10);
        }
        for i in (0..100u64).rev() {
            b.first_use_ns.insert(OpInstance { sig: i, occ: 0 }, i * 10);
        }
        let ea = encode_artifact(&Artifact::Stage4(Arc::new(a))).unwrap();
        let eb = encode_artifact(&Artifact::Stage4(Arc::new(b))).unwrap();
        assert_eq!(ea, eb);
    }

    #[test]
    fn artifact_decode_rejects_any_corruption() {
        let bytes = encode_artifact(&Artifact::Stage2(Arc::new(sample_stage2()))).unwrap();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(decode_artifact(&bad, ArtifactKind::Stage2).is_err(), "mutation at byte {i}");
        }
        for end in 0..bytes.len() {
            assert!(
                decode_artifact(&bytes[..end], ArtifactKind::Stage2).is_err(),
                "truncation to {end}"
            );
        }
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(decode_artifact(&extra, ArtifactKind::Stage2).is_err(), "trailing bytes rejected");
        // A kind mismatch is rejected even with pristine bytes.
        assert!(decode_artifact(&bytes, ArtifactKind::Stage3).is_err());
    }

    #[test]
    fn artifact_decode_rejects_foreign_build_tags() {
        let mut bytes =
            encode_artifact(&Artifact::Stage4(Arc::new(Stage4Result::default()))).unwrap();
        bytes[12] ^= 0xff; // build tag, outside the checksum's coverage
        assert!(Ffb::parse(&bytes).is_ok(), "container itself is intact");
        assert!(!header_is_current(&bytes), "cache hygiene sees it as stale");
        assert!(decode_artifact(&bytes, ArtifactKind::Stage4).is_err(), "cache path refuses it");
    }

    fn doc() -> Json {
        Json::obj([
            ("app", Json::Str("als".to_string())),
            ("big", Json::Int(i128::from(u64::MAX) * 3)),
            ("neg", Json::Int(-7)),
            ("pct", Json::Float(12.345678901234567)),
            ("flag", Json::Bool(true)),
            ("off", Json::Bool(false)),
            ("nothing", Json::Null),
            ("text", Json::Str("quote \" slash \\ tab\t".to_string())),
            ("sym", Json::Sym(crate::intern::intern("codec-sym-probe"))),
            ("static", Json::Static("codec-static-probe")),
            (
                "cells",
                Json::arr([
                    Json::obj([("k", Json::Int(1)), ("v", Json::Float(2.25))]),
                    Json::obj([("k", Json::Int(2)), ("v", Json::Float(0.5))]),
                ]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ])
    }

    #[test]
    fn container_roundtrips_and_checks_integrity() {
        let mut b = FfbBuilder::new(KIND_DOC);
        b.section(SEC_STRINGS, vec![1, 2, 3]);
        b.section(SEC_DOC, vec![9; 40]);
        let bytes = b.finish();
        assert!(is_ffb(&bytes));
        assert!(header_is_current(&bytes));
        let ffb = Ffb::parse(&bytes).unwrap();
        assert_eq!(ffb.kind, KIND_DOC);
        assert_eq!(ffb.build_tag, build_tag());
        assert_eq!(ffb.section(SEC_STRINGS).unwrap(), &[1, 2, 3]);
        assert_eq!(ffb.section(SEC_DOC).unwrap().len(), 40);
        assert!(ffb.section(SEC_RECORDS).is_err(), "absent section is an error");

        // Any single-byte corruption is rejected, wherever it lands —
        // except the build tag (bytes 12..20), which parse deliberately
        // ignores so `diogenes convert` can read files from other builds
        // (the artifact-cache path checks it separately).
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            if (12..20).contains(&i) {
                assert!(Ffb::parse(&bad).is_ok(), "build-tag byte {i} is not integrity-checked");
            } else {
                assert!(Ffb::parse(&bad).is_err(), "mutation at byte {i} must not parse");
            }
        }
        // Every strict prefix is rejected too.
        for end in 0..bytes.len() {
            assert!(Ffb::parse(&bytes[..end]).is_err(), "truncation to {end} must not parse");
        }
    }

    #[test]
    fn string_table_interns_once_per_file() {
        let mut b = StrTableBuilder::new();
        let a = b.add("codec-table-a");
        let a2 = b.add("codec-table-a");
        let c = b.add_static("codec-table-b");
        assert_eq!(a, a2, "dedup within the table");
        assert_ne!(a, c);
        let t = StrTable::parse(&b.encode()).unwrap();
        assert_eq!(t.get(a).unwrap(), "codec-table-a");
        assert_eq!(t.get(c).unwrap(), "codec-table-b");
        assert!(t.get(99).is_err());
        // The parsed entries share the interner's address space.
        assert!(std::ptr::eq(t.get(a).unwrap(), crate::intern::intern("codec-table-a").resolve()));
    }

    #[test]
    fn doc_roundtrip_is_byte_identical() {
        let d = doc();
        let bytes = encode_doc(&d);
        let back = decode_doc(&bytes).unwrap();
        assert_eq!(back, d, "content equality across Str/Sym variants");
        assert_eq!(back.to_string_pretty(), d.to_string_pretty());
        assert_eq!(back.to_string_compact(), d.to_string_compact());
        assert_eq!(decode_any_doc(&bytes).unwrap().to_string_pretty(), d.to_string_pretty());
    }

    #[test]
    fn doc_decode_rejects_corruption_without_panicking() {
        let d = doc();
        let bytes = encode_doc(&d);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x11;
            if (12..20).contains(&i) {
                // Build-tag bytes: documents decode across builds.
                let back = decode_doc(&bad).expect("foreign build tags decode fine");
                assert_eq!(back.to_string_pretty(), d.to_string_pretty());
            } else {
                assert!(decode_doc(&bad).is_err(), "mutation at byte {i}");
            }
        }
        for end in 0..bytes.len() {
            assert!(decode_doc(&bytes[..end]).is_err(), "truncation to {end}");
        }
    }

    #[test]
    fn non_finite_floats_render_identically_after_roundtrip() {
        let d = Json::obj([("nan", Json::Float(f64::NAN)), ("inf", Json::Float(f64::INFINITY))]);
        let back = decode_doc(&encode_doc(&d)).unwrap();
        // NaN breaks value equality, but both sides render as "null" —
        // byte identity is the contract that matters.
        assert_eq!(back.to_string_pretty(), d.to_string_pretty());
    }

    #[test]
    fn doc_depth_is_bounded() {
        let mut v = Json::Null;
        for _ in 0..600 {
            v = Json::Arr(vec![v]);
        }
        let bytes = encode_doc(&v);
        assert!(decode_doc(&bytes).is_err(), "over-deep documents are rejected");
    }

    fn sample_matrix(shard: Option<Shard>) -> SweepMatrix {
        let axes = vec![
            Axis::new("cost.free_base_ns", vec![1000, 2000]),
            Axis::new("driver.unified_memset_penalty", vec![1, 30]),
        ];
        let cells: Vec<SweepCell> = (0..4usize)
            .map(|i| SweepCell {
                index: i,
                assignment: vec![
                    ("cost.free_base_ns".to_string(), 1000 * (1 + (i as u64 & 1))),
                    ("driver.unified_memset_penalty".to_string(), if i < 2 { 1 } else { 30 }),
                ],
                baseline_exec_ns: 1_000_000 + i as u64,
                total_benefit_ns: 5_000 * i as u64,
                benefit_pct: 0.1 * i as f64 + 0.05,
                problem_count: i + 1,
                sync_issues: i,
                transfer_issues: 1,
                sequence_count: 2,
                collection_overhead_factor: 3.5 - i as f64 * 0.25,
            })
            .collect();
        let summary = SweepMatrix::summarize(&cells);
        SweepMatrix {
            app_name: "als".to_string(),
            workload: "test-workload".to_string(),
            axes,
            layout: AxisLayout::Cartesian,
            total_cells: 4,
            shard,
            cells,
            summary,
            cache_stats: None,
        }
    }

    #[test]
    fn sweep_roundtrip_renders_byte_identically() {
        for shard in [None, Some(Shard::new(1, 2).unwrap())] {
            let m = sample_matrix(shard);
            let bytes = encode_sweep(&m).unwrap();
            let back = decode_sweep(&bytes).unwrap();
            assert_eq!(
                crate::sweep::sweep_to_json(&back).to_string_pretty(),
                crate::sweep::sweep_to_json(&m).to_string_pretty()
            );
            assert_eq!(
                decode_any_doc(&bytes).unwrap().to_string_pretty(),
                crate::sweep::sweep_to_json(&m).to_string_pretty()
            );
        }
    }

    #[test]
    fn sweep_decode_rejects_corruption_without_panicking() {
        let bytes = encode_sweep(&sample_matrix(None)).unwrap();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x2a;
            if (12..20).contains(&i) {
                assert!(decode_sweep(&bad).is_ok(), "sweeps decode across builds");
            } else {
                assert!(decode_sweep(&bad).is_err(), "mutation at byte {i}");
            }
        }
    }

    #[test]
    fn sweep_encode_validates_assignments() {
        let mut m = sample_matrix(None);
        m.cells[1].assignment[0].0 = "cost.other_field".to_string();
        assert!(encode_sweep(&m).is_err());
    }

    #[test]
    fn scratch_readers_are_zero_alloc_capable_and_consistent() {
        // Stage 4 columns match the map-materializing decoder.
        let mut s = Stage4Result::default();
        for i in 0..50u64 {
            s.first_use_ns.insert(OpInstance { sig: i % 7, occ: i }, i * 3);
        }
        s.exec_time_ns = 99;
        let bytes = encode_artifact(&Artifact::Stage4(Arc::new(s.clone()))).unwrap();
        let mut cols = Stage4Cols::new();
        cols.read(&bytes).unwrap();
        assert_eq!(cols.len(), 50);
        assert_eq!(cols.exec_time_ns, 99);
        for i in 0..cols.len() {
            let op = OpInstance { sig: cols.sig[i], occ: cols.occ[i] };
            assert_eq!(s.first_use_ns[&op], cols.first_use_ns[i]);
        }
        // Columns are sorted by (sig, occ) — the canonical encode order.
        for i in 1..cols.len() {
            assert!((cols.sig[i - 1], cols.occ[i - 1]) < (cols.sig[i], cols.occ[i]));
        }

        // Sweep columns match the struct decoder, reusing one scratch.
        let m = sample_matrix(None);
        let sweep_bytes = encode_sweep(&m).unwrap();
        let mut sc = SweepCellCols::new();
        sc.read(&sweep_bytes).unwrap();
        sc.read(&sweep_bytes).unwrap(); // reuse is idempotent
        assert_eq!(sc.len(), m.cells.len());
        assert_eq!(sc.axes, 2);
        for (i, cell) in m.cells.iter().enumerate() {
            assert_eq!(sc.index[i] as usize, cell.index);
            assert_eq!(sc.axis_values[i], cell.assignment[0].1);
            assert_eq!(sc.axis_values[sc.len() + i], cell.assignment[1].1);
            assert_eq!(sc.total_benefit_ns[i], cell.total_benefit_ns);
            assert_eq!(sc.benefit_pct[i], cell.benefit_pct);
            assert_eq!(sc.collection_overhead_factor[i], cell.collection_overhead_factor);
        }
    }

    #[test]
    fn checksum_stream_matches_one_shot_for_any_chunking() {
        // Pseudo-random payloads of awkward lengths, fed in awkward
        // chunk sizes, must reproduce the one-shot walk exactly.
        let mut payload = Vec::new();
        let mut x = 0x243f_6a88_85a3_08d3u64;
        for _ in 0..301 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            payload.push(x as u8);
        }
        for len in [0usize, 1, 7, 8, 9, 16, 63, 64, 65, 255, 300, 301] {
            let bytes = &payload[..len];
            let expect = checksum(bytes);
            for chunk in [1usize, 2, 3, 7, 8, 11, 64, 301] {
                let mut cs = ChecksumStream::new(len as u64);
                for piece in bytes.chunks(chunk) {
                    cs.update(piece);
                }
                assert_eq!(cs.finish(), expect, "len {len} chunk {chunk}");
            }
        }
    }

    #[test]
    fn ffb_writer_is_byte_identical_to_builder() {
        // Payloads straddle the chunk buffer: empty, small, > WRITER_CHUNK.
        let big: Vec<u8> = (0..(WRITER_CHUNK + 13)).map(|i| (i * 31) as u8).collect();
        let sections: [(u32, Vec<u8>); 3] =
            [(SEC_STRINGS, vec![]), (SEC_RECORDS, vec![7u8; 100]), (SEC_DOC, big)];

        let mut b = FfbBuilder::new(KIND_DOC);
        for (id, payload) in &sections {
            b.section(*id, payload.clone());
        }
        let expect = b.finish();

        let ids: Vec<u32> = sections.iter().map(|(id, _)| *id).collect();
        let mut fw = FfbWriter::new(std::io::Cursor::new(Vec::new()), KIND_DOC, &ids).unwrap();
        for (id, payload) in &sections {
            // Stream each payload in uneven pieces.
            fw.begin_section(*id).unwrap();
            for piece in payload.chunks(977) {
                fw.write(piece).unwrap();
            }
            fw.end_section().unwrap();
        }
        assert_eq!(fw.finish().unwrap().into_inner(), expect);
        assert_eq!(
            Ffb::parse(&expect).unwrap().section(SEC_DOC).unwrap().len(),
            sections[2].1.len()
        );
    }

    #[test]
    fn ffb_writer_supports_nonzero_stream_offsets() {
        let mut b = FfbBuilder::new(KIND_DOC);
        b.section(SEC_DOC, vec![5u8; 50]);
        let expect = b.finish();

        let mut cur = std::io::Cursor::new(b"prefix--".to_vec());
        cur.set_position(8);
        let mut fw = FfbWriter::new(cur, KIND_DOC, &[SEC_DOC]).unwrap();
        fw.section(SEC_DOC, &[5u8; 50]).unwrap();
        let out = fw.finish().unwrap().into_inner();
        assert_eq!(&out[..8], b"prefix--");
        assert_eq!(&out[8..], &expect[..]);
    }

    #[test]
    fn ffb_writer_enforces_declared_section_order() {
        let cur = std::io::Cursor::new(Vec::new());
        let mut fw = FfbWriter::new(cur, KIND_DOC, &[SEC_STRINGS, SEC_DOC]).unwrap();
        assert!(fw.write(b"x").is_err(), "write outside a section");
        assert!(fw.begin_section(SEC_DOC).is_err(), "out of declared order");
        fw.begin_section(SEC_STRINGS).unwrap();
        assert!(fw.begin_section(SEC_DOC).is_err(), "previous section still open");
        fw.end_section().unwrap();
        assert!(fw.finish().is_err(), "a declared section is missing");
    }

    #[test]
    fn streamed_writers_match_one_shot_encoders() {
        let artifact = Artifact::Stage2(Arc::new(sample_stage2()));
        let expect = encode_artifact(&artifact).unwrap();
        let mut cur = std::io::Cursor::new(Vec::new());
        assert!(write_artifact_to(&mut cur, &artifact).unwrap());
        assert_eq!(cur.into_inner(), expect);

        let mut cur = std::io::Cursor::new(Vec::new());
        let analysis = Artifact::Analysis(Arc::new(crate::analysis::Analysis {
            graph: crate::graph::ExecGraph {
                nodes: Vec::new(),
                exec_time_ns: 0,
                baseline_exec_ns: 0,
            },
            benefit: crate::benefit::BenefitReport {
                per_node: Vec::new(),
                total_ns: 0,
                predicted_exec_ns: 0,
            },
            problems: Vec::new(),
            single_point: Vec::new(),
            api_folds: Vec::new(),
            sequences: Vec::new(),
            by_api: Vec::new(),
            baseline_exec_ns: 0,
        }));
        assert!(!write_artifact_to(&mut cur, &analysis).unwrap());
        assert!(cur.into_inner().is_empty(), "memory-only kinds leave the stream untouched");

        let d = doc();
        let mut cur = std::io::Cursor::new(Vec::new());
        write_doc_to(&mut cur, &d).unwrap();
        assert_eq!(cur.into_inner(), encode_doc(&d));

        for shard in [None, Some(Shard::new(1, 2).unwrap())] {
            let m = sample_matrix(shard);
            let mut cur = std::io::Cursor::new(Vec::new());
            write_sweep_to(&mut cur, &m).unwrap();
            assert_eq!(cur.into_inner(), encode_sweep(&m).unwrap());
        }
        let mut bad = sample_matrix(None);
        bad.cells[1].assignment[0].0 = "cost.other_field".to_string();
        let mut cur = std::io::Cursor::new(Vec::new());
        assert!(write_sweep_to(&mut cur, &bad).is_err(), "streaming path validates too");
    }

    #[test]
    fn borrowed_stage2_reader_matches_owned_decode() {
        let mut s = sample_stage2();
        // A second call with an empty stack and no options exercises the
        // frame-range bookkeeping.
        s.calls.push(TracedCall {
            seq: 1,
            api: ApiFn::CudaDeviceSynchronize,
            site: sample_loc(900),
            stack: StackTrace { frames: vec![] },
            sig: 1,
            folded_sig: 2,
            occ: 0,
            enter_ns: 100,
            exit_ns: 180,
            wait_ns: 60,
            wait_reason: None,
            transfer: None,
            is_launch: true,
        });
        let bytes = encode_artifact(&Artifact::Stage2(Arc::new(s.clone()))).unwrap();

        let mut cols = Stage2Cols::new();
        cols.read(&bytes).unwrap();
        cols.read(&bytes).unwrap(); // reuse is idempotent
        assert_eq!(cols.exec_time_ns, s.exec_time_ns);
        assert_eq!(cols.len(), s.calls.len());

        // Rebuilding the owned record from the flattened rows and
        // re-encoding reproduces the input bytes exactly — full
        // equivalence, not per-field spot checks.
        let rebuilt = Stage2Result {
            exec_time_ns: cols.exec_time_ns,
            calls: cols
                .calls
                .iter()
                .map(|c| TracedCall {
                    seq: c.seq as usize,
                    api: c.api,
                    site: c.site,
                    stack: StackTrace {
                        frames: cols
                            .frames_of(c)
                            .iter()
                            .map(|f| Frame::new(f.function.resolve(), f.callsite))
                            .collect(),
                    },
                    sig: c.sig,
                    folded_sig: c.folded_sig,
                    occ: c.occ,
                    enter_ns: c.enter_ns,
                    exit_ns: c.exit_ns,
                    wait_ns: c.wait_ns,
                    wait_reason: c.wait_reason,
                    transfer: c.transfer,
                    is_launch: c.is_launch,
                })
                .collect(),
        };
        let re = encode_artifact(&Artifact::Stage2(Arc::new(rebuilt))).unwrap();
        assert_eq!(re, bytes);
    }

    #[test]
    fn borrowed_readers_match_owned_decode_for_remaining_kinds() {
        let disc = Discovery {
            sync_fn: InternalFn::SyncWait,
            waits: [(InternalFn::SyncWait, 500), (InternalFn::Enqueue, 0)].into_iter().collect(),
        };
        let bytes = encode_artifact(&Artifact::Discovery(Arc::new(disc.clone()))).unwrap();
        let mut dc = DiscoveryCols::new();
        dc.read(&bytes).unwrap();
        assert_eq!(dc.sync_fn, Some(disc.sync_fn));
        let waits: HashMap<InternalFn, u64> =
            dc.wait_fns.iter().copied().zip(dc.wait_ns.iter().copied()).collect();
        assert_eq!(waits, disc.waits);

        let s1 = Stage1Result {
            exec_time_ns: 42,
            sync_apis: [(ApiFn::CudaFree, 3), (ApiFn::CudaMemcpy, 7)].into_iter().collect(),
            total_wait_ns: 99,
            sync_hits: 10,
        };
        let bytes = encode_artifact(&Artifact::Stage1(Arc::new(s1.clone()))).unwrap();
        let mut c1 = Stage1Cols::new();
        c1.read(&bytes).unwrap();
        assert_eq!(
            (c1.exec_time_ns, c1.total_wait_ns, c1.sync_hits),
            (s1.exec_time_ns, s1.total_wait_ns, s1.sync_hits)
        );
        let apis: HashMap<ApiFn, u64> =
            c1.apis.iter().copied().zip(c1.api_hits.iter().copied()).collect();
        assert_eq!(apis, s1.sync_apis);

        let s3 = sample_stage3();
        let bytes = encode_artifact(&Artifact::Stage3(Arc::new(s3))).unwrap();
        let mut c3 = Stage3Cols::new();
        c3.read(&bytes).unwrap();
        // Rebuild and re-encode: byte equality is full equivalence.
        let rebuilt = Stage3Result {
            required_syncs: c3.required_syncs.iter().copied().collect(),
            observed_syncs: c3.observed_syncs.iter().copied().collect(),
            accesses: c3
                .accesses
                .iter()
                .map(|a| ProtectedAccess {
                    sync: a.sync,
                    access_site: a.access_site,
                    rough_gap_ns: a.rough_gap_ns,
                })
                .collect(),
            duplicates: c3
                .duplicates
                .iter()
                .map(|dup| DuplicateTransfer {
                    op: dup.op,
                    site: dup.site,
                    first_site: dup.first_site,
                    bytes: dup.bytes,
                    digest: dup.digest,
                })
                .collect(),
            first_use_sites: c3.first_use_sites.iter().copied().collect(),
            hashed_bytes: c3.hashed_bytes,
            exec_time_sync_ns: c3.exec_time_sync_ns,
            exec_time_hash_ns: c3.exec_time_hash_ns,
            exec_time_ns: c3.exec_time_ns,
        };
        let re = encode_artifact(&Artifact::Stage3(Arc::new(rebuilt))).unwrap();
        assert_eq!(re, bytes);
        for w in c3.required_syncs.windows(2) {
            assert!(w[0] < w[1], "op sets come back sorted for binary search");
        }
    }

    #[test]
    fn borrowed_readers_work_at_any_buffer_alignment() {
        // Copy a container to every offset 1..8 of a larger buffer and
        // read it from there: per-access LE reads make alignment moot.
        let bytes = encode_artifact(&Artifact::Stage2(Arc::new(sample_stage2()))).unwrap();
        let mut cols = Stage2Cols::new();
        for offset in 1..8 {
            let mut shifted = vec![0u8; offset];
            shifted.extend_from_slice(&bytes);
            cols.read(&shifted[offset..]).unwrap();
            assert_eq!(cols.len(), 1);
        }
        let mut s4 = Stage4Result::default();
        s4.first_use_ns.insert(OpInstance { sig: 3, occ: 1 }, 55);
        let bytes = encode_artifact(&Artifact::Stage4(Arc::new(s4))).unwrap();
        let mut c4 = Stage4Cols::new();
        for offset in 1..8 {
            let mut shifted = vec![0u8; offset];
            shifted.extend_from_slice(&bytes);
            c4.read(&shifted[offset..]).unwrap();
            assert_eq!((c4.sig[0], c4.occ[0], c4.first_use_ns[0]), (3, 1, 55));
        }
    }

    #[test]
    fn typed_columns_reinterpret_only_when_aligned() {
        let vals: Vec<u8> = [1u64, 2, 3].iter().flat_map(|v| v.to_le_bytes()).collect();
        assert!(ColU64::new(&vals[..12]).is_err(), "partial words rejected");
        let col = ColU64::new(&vals).unwrap();
        assert_eq!(col.len(), 3);
        assert_eq!(col.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(col.get(2), Some(3));
        assert_eq!(col.get(3), None);
        // A deliberately misaligned view still reads correctly via the
        // per-access path; as_aligned refuses it.
        let mut buf = vec![0u8; 1];
        buf.extend_from_slice(&vals);
        let mis = ColU64::new(&buf[1..]).unwrap();
        assert!(mis.as_aligned().is_none());
        assert_eq!(mis.at(1), 2);
        #[cfg(target_endian = "little")]
        {
            // Vec allocations are ≥8-aligned in practice; when aligned,
            // reinterpretation must agree with the per-access reads.
            if let Some(words) = col.as_aligned() {
                assert_eq!(words, &[1, 2, 3]);
            }
        }
    }

    #[test]
    fn entry_header_check_classifies_stale_vs_corrupt() {
        let bytes = encode_artifact(&Artifact::Stage4(Arc::new(Stage4Result::default()))).unwrap();
        assert!(check_entry_header(&bytes).is_ok());
        assert!(matches!(
            check_entry_header(&bytes[..HEADER_LEN - 1]),
            Err(HeaderIssue::Corrupt(_))
        ));
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(check_entry_header(&bad_magic), Err(HeaderIssue::Corrupt(_))));
        let mut old_schema = bytes.clone();
        old_schema[8] = old_schema[8].wrapping_add(1);
        assert!(matches!(check_entry_header(&old_schema), Err(HeaderIssue::Stale(_))));
        let mut foreign = bytes;
        foreign[12] ^= 0xff;
        assert!(matches!(check_entry_header(&foreign), Err(HeaderIssue::Stale(_))));
    }
}
