//! FFB — the shared binary artifact codec and container format.
//!
//! Every machine-path artifact in the workspace (stage-cache entries,
//! binary sweep shards, `--format bin` exports) is an **FFB** file: a
//! versioned little-endian container whose sections follow the same
//! interned-`Sym`/columnar layout the in-memory analysis core uses, so a
//! reader makes one pass with zero per-record allocation. JSON remains
//! the human-facing export; FFB is what other runs and tools ingest.
//!
//! Container layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic "DIOGFFB1"
//! 8       4     SCHEMA_VERSION (u32)
//! 12      8     build tag (u64; digest of the producing binary)
//! 20      8     checksum (u64; over every byte from offset 28 on)
//! 28      1     kind byte (artifact kind, KIND_DOC, or KIND_SWEEP)
//! 29      4     section count (u32, at most MAX_SECTIONS)
//! 33      12×n  section table: (id u32, length u64) per section
//! ...           section payloads, back to back in table order
//! ```
//!
//! Strings never appear inline in records. Each container carries one
//! string-table section ([`SEC_STRINGS`]); records refer to strings by
//! dense `u32` table ids, and a reader interns each table entry exactly
//! once per *file* (not once per record) into the global symbol table
//! (`crate::intern`), after which every per-record string resolve is an
//! index into an already-loaded `Vec<Sym>`.
//!
//! Integrity: [`Ffb::parse`] verifies magic, schema version, section
//! bounds, and the checksum, so any single-byte corruption of a stored
//! file is rejected as an error — decoding never panics on hostile
//! bytes. The build tag is *not* checked by `parse` (so `diogenes
//! convert` can read files from other builds); the artifact-cache path
//! ([`decode_artifact`]) does check it, preserving the store's rule that
//! a rebuilt binary never trusts an old cache.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use cuda_driver::{ApiFn, InternalFn};
use gpu_sim::{Digest, Direction, Frame, SourceLoc, StackTrace, WaitReason};
use instrument::Discovery;

use crate::intern::{intern, intern_static, Sym};
use crate::json::Json;
use crate::records::{
    DuplicateTransfer, OpInstance, ProtectedAccess, Stage1Result, Stage2Result, Stage3Result,
    Stage4Result, TracedCall, TransferRec,
};
use crate::store::{build_tag, Artifact, ArtifactKind};
use crate::sweep::{Axis, AxisLayout, Shard, SweepCell, SweepMatrix, SweepSummary};

/// Bump whenever the binary codec or the keying rules change; old disk
/// entries become stale and are ignored.
pub const SCHEMA_VERSION: u32 = 2;

/// File magic for FFB containers ("DIOGenes Feed-Forward Binary v1").
pub const FFB_MAGIC: &[u8; 8] = b"DIOGFFB1";

/// Container kind byte for a generic JSON document (reports, telemetry).
pub const KIND_DOC: u8 = 16;

/// Container kind byte for a typed columnar sweep matrix.
pub const KIND_SWEEP: u8 = 17;

/// Section id: the string table (one per container).
pub const SEC_STRINGS: u32 = 1;

/// Section id: artifact record payload.
pub const SEC_RECORDS: u32 = 2;

/// Section id: generic JSON document tree.
pub const SEC_DOC: u32 = 3;

/// Section id: sweep header (app, workload, layout, shard, axes).
pub const SEC_SWEEP_HEADER: u32 = 4;

/// Section id: sweep cells, one column per field.
pub const SEC_SWEEP_CELLS: u32 = 5;

/// Containers hold a handful of sections; the cap keeps [`Ffb::parse`]
/// allocation-free (the section table lives in a fixed array).
pub const MAX_SECTIONS: usize = 8;

const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 1 + 4;
const CHECKSUM_AT: usize = 20;
const KIND_AT: usize = 28;

/// Does `bytes` start with the FFB magic? Used by readers that accept
/// either JSON text or a binary container and sniff which they got.
pub fn is_ffb(bytes: &[u8]) -> bool {
    bytes.len() >= 8 && &bytes[..8] == FFB_MAGIC
}

/// Cheap header currency check for cache hygiene: magic, schema version
/// and build tag match the running binary. Does not touch the payload
/// (no checksum walk), so `scan_cache` stays O(header) per file.
pub fn header_is_current(bytes: &[u8]) -> bool {
    bytes.len() >= HEADER_LEN
        && &bytes[..8] == FFB_MAGIC
        && bytes[8..12] == SCHEMA_VERSION.to_le_bytes()
        && bytes[12..CHECKSUM_AT] == build_tag().to_le_bytes()
}

/// Word-at-a-time mixing checksum over the covered bytes. Every step is
/// a bijection of the running state for a fixed input suffix, so any
/// single-word (hence single-byte) change is *guaranteed* to change the
/// result — exactly the corruption class disk rot and truncated writes
/// produce.
fn checksum(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0xff51_afd7_ed55_8ccd;
    let mut h = 0x9e37_79b9_7f4a_7c15u64 ^ (bytes.len() as u64).wrapping_mul(PRIME);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().unwrap());
        h = (h ^ w).wrapping_mul(PRIME);
        h ^= h >> 29;
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut buf = [0u8; 8];
        buf[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(buf)).wrapping_mul(PRIME);
        h ^= h >> 29;
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

// ---------------------------------------------------------------------------
// Container writer / reader
// ---------------------------------------------------------------------------

/// Assembles an FFB container: append sections, then [`finish`].
///
/// [`finish`]: FfbBuilder::finish
pub struct FfbBuilder {
    kind: u8,
    sections: Vec<(u32, Vec<u8>)>,
}

impl FfbBuilder {
    pub fn new(kind: u8) -> Self {
        FfbBuilder { kind, sections: Vec::new() }
    }

    pub fn section(&mut self, id: u32, payload: Vec<u8>) {
        assert!(self.sections.len() < MAX_SECTIONS, "too many FFB sections");
        self.sections.push((id, payload));
    }

    /// Serialize header + section table + payloads and stamp the checksum.
    pub fn finish(self) -> Vec<u8> {
        let body: usize = self.sections.iter().map(|(_, p)| p.len()).sum();
        let mut out = Vec::with_capacity(HEADER_LEN + 12 * self.sections.len() + body);
        out.extend_from_slice(FFB_MAGIC);
        out.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
        out.extend_from_slice(&build_tag().to_le_bytes());
        out.extend_from_slice(&[0u8; 8]); // checksum placeholder
        out.push(self.kind);
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (id, payload) in &self.sections {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        }
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        let ck = checksum(&out[KIND_AT..]);
        out[CHECKSUM_AT..CHECKSUM_AT + 8].copy_from_slice(&ck.to_le_bytes());
        out
    }
}

/// A parsed (but not decoded) FFB container: validated header, checksum,
/// and section bounds. Parsing allocates nothing — the section table is
/// a fixed array — so scratch readers built on it stay allocation-free.
pub struct Ffb<'a> {
    pub kind: u8,
    pub build_tag: u64,
    bytes: &'a [u8],
    count: usize,
    sections: [(u32, usize, usize); MAX_SECTIONS],
}

impl<'a> Ffb<'a> {
    /// Validate magic, schema version, checksum, and the section table.
    /// Every failure is an `Err`; hostile input can never panic past
    /// this point because all section slices are bounds-checked here.
    pub fn parse(bytes: &'a [u8]) -> Result<Ffb<'a>, String> {
        if bytes.len() < HEADER_LEN {
            return Err(format!("ffb: truncated header ({} bytes)", bytes.len()));
        }
        if &bytes[..8] != FFB_MAGIC {
            return Err("ffb: bad magic".to_string());
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != SCHEMA_VERSION {
            return Err(format!("ffb: schema version {version}, expected {SCHEMA_VERSION}"));
        }
        let stored = u64::from_le_bytes(bytes[CHECKSUM_AT..CHECKSUM_AT + 8].try_into().unwrap());
        if stored != checksum(&bytes[KIND_AT..]) {
            return Err("ffb: checksum mismatch (corrupt file)".to_string());
        }
        let build = u64::from_le_bytes(bytes[12..CHECKSUM_AT].try_into().unwrap());
        let kind = bytes[KIND_AT];
        let count = u32::from_le_bytes(bytes[KIND_AT + 1..HEADER_LEN].try_into().unwrap()) as usize;
        if count > MAX_SECTIONS {
            return Err(format!("ffb: {count} sections exceeds the cap of {MAX_SECTIONS}"));
        }
        let table_end = HEADER_LEN + 12 * count;
        if table_end > bytes.len() {
            return Err("ffb: truncated section table".to_string());
        }
        let mut sections = [(0u32, 0usize, 0usize); MAX_SECTIONS];
        let mut offset = table_end;
        for (i, slot) in sections.iter_mut().enumerate().take(count) {
            let at = HEADER_LEN + 12 * i;
            let id = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
            let len = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap());
            let len = usize::try_from(len).map_err(|_| "ffb: section length overflow")?;
            let end = offset.checked_add(len).filter(|&e| e <= bytes.len());
            let end = end.ok_or_else(|| format!("ffb: section {id} overruns the file"))?;
            *slot = (id, offset, len);
            offset = end;
        }
        if offset != bytes.len() {
            return Err(format!("ffb: {} trailing bytes after sections", bytes.len() - offset));
        }
        Ok(Ffb { kind, build_tag: build, bytes, count, sections })
    }

    /// Payload of the first section with `id`.
    pub fn section(&self, id: u32) -> Result<&'a [u8], String> {
        self.sections[..self.count]
            .iter()
            .find(|s| s.0 == id)
            .map(|&(_, start, len)| &self.bytes[start..start + len])
            .ok_or_else(|| format!("ffb: missing section {id}"))
    }
}

// ---------------------------------------------------------------------------
// Primitive encoder / decoder
// ---------------------------------------------------------------------------
//
// Hand-rolled little-endian primitives (the workspace is std-only, no
// serde). Unordered collections are sorted on encode so the bytes are a
// function of the value, not of hash-map iteration order; decoded
// sets/maps are only ever consumed via membership tests and keyed
// lookups downstream (`problem::classify`), so re-hashing on decode
// cannot change reports.

/// Little-endian byte sink for section payloads.
#[derive(Default)]
pub struct Enc(pub Vec<u8>);

impl Enc {
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u128(&mut self, v: u128) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.0.extend_from_slice(s.as_bytes());
    }
    pub fn opt<T>(&mut self, v: &Option<T>, f: impl FnOnce(&mut Self, &T)) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                f(self, x);
            }
        }
    }
}

/// Bounds-checked little-endian cursor over a section payload. Every
/// method returns `Err` (never panics) on truncated or corrupt input.
pub struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// `Err` unless the cursor consumed the payload exactly.
    pub fn finish(&self) -> Result<(), String> {
        if self.pos != self.bytes.len() {
            return Err(format!("{} trailing bytes in section", self.remaining()));
        }
        Ok(())
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| format!("artifact truncated at byte {}", self.pos))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    pub fn bool(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(format!("bad bool byte {b:#04x}")),
        }
    }
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub fn u128(&mut self) -> Result<u128, String> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }
    pub fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }
    pub fn seq_len(&mut self) -> Result<usize, String> {
        let n = self.u64()?;
        // Any valid length is bounded by the remaining bytes (every
        // element costs at least one byte), which caps allocations on
        // corrupt input.
        let n = usize::try_from(n).map_err(|_| "length overflow".to_string())?;
        if n > self.remaining() {
            return Err(format!("implausible collection length {n}"));
        }
        Ok(n)
    }
    /// A `seq_len()` whose elements are fixed-width: also requires
    /// `n * elem_bytes` to fit in the remaining payload, so column reads
    /// can pre-slice before allocating.
    pub fn col_len(&mut self, elem_bytes: usize) -> Result<usize, String> {
        let n = self.seq_len()?;
        let total = n.checked_mul(elem_bytes).ok_or("column size overflow")?;
        if total > self.remaining() {
            return Err(format!("implausible column length {n}"));
        }
        Ok(n)
    }
    pub fn str(&mut self) -> Result<String, String> {
        Ok(self.str_ref()?.to_string())
    }
    /// Borrowed string view — lets the string table intern straight from
    /// the file bytes without an intermediate `String`.
    pub fn str_ref(&mut self) -> Result<&'a str, String> {
        let n = self.seq_len()?;
        let raw = self.take(n)?;
        std::str::from_utf8(raw).map_err(|_| "invalid utf-8 in artifact".to_string())
    }
    pub fn opt<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, String>,
    ) -> Result<Option<T>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            b => Err(format!("bad option tag {b:#04x}")),
        }
    }
}

/// Read one u64 out of a column slice previously sized by
/// [`Dec::col_len`] + [`Dec::take`].
fn col_u64(col: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(col[8 * i..8 * i + 8].try_into().unwrap())
}

fn extend_u64s(dst: &mut Vec<u64>, col: &[u8]) {
    dst.clear();
    dst.extend(col.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())));
}

fn extend_f64s(dst: &mut Vec<f64>, col: &[u8]) {
    dst.clear();
    dst.extend(
        col.chunks_exact(8).map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap()))),
    );
}

// ---------------------------------------------------------------------------
// String table
// ---------------------------------------------------------------------------

/// Deduplicating writer for a container's string table. Strings are
/// mapped to dense local ids in first-reference order via the global
/// interner, with a `Sym`-indexed side table so repeat lookups are two
/// array reads — no hashing per record.
#[derive(Default)]
pub struct StrTableBuilder {
    /// `Sym::index() -> local id`, `u32::MAX` = not yet assigned.
    ids: Vec<u32>,
    order: Vec<Sym>,
}

impl StrTableBuilder {
    pub fn new() -> Self {
        StrTableBuilder::default()
    }

    pub fn add(&mut self, s: &str) -> u32 {
        self.add_sym(intern(s))
    }

    pub fn add_static(&mut self, s: &'static str) -> u32 {
        self.add_sym(intern_static(s))
    }

    pub fn add_sym(&mut self, sym: Sym) -> u32 {
        let idx = sym.index();
        if idx >= self.ids.len() {
            self.ids.resize(idx + 1, u32::MAX);
        }
        if self.ids[idx] == u32::MAX {
            self.ids[idx] = self.order.len() as u32;
            self.order.push(sym);
        }
        self.ids[idx]
    }

    /// Serialize as a [`SEC_STRINGS`] payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        e.u32(self.order.len() as u32);
        for sym in &self.order {
            e.str(sym.resolve());
        }
        e.0
    }
}

/// A container's parsed string table: every entry interned exactly once
/// at parse time, so per-record resolution is one `Vec` index.
pub struct StrTable {
    syms: Vec<Sym>,
}

impl StrTable {
    pub fn parse(section: &[u8]) -> Result<StrTable, String> {
        let mut d = Dec::new(section);
        let n = d.u32()? as usize;
        if n > d.remaining() {
            return Err(format!("implausible string table size {n}"));
        }
        let mut syms = Vec::with_capacity(n);
        for _ in 0..n {
            syms.push(intern(d.str_ref()?));
        }
        d.finish()?;
        Ok(StrTable { syms })
    }

    pub fn sym(&self, id: u32) -> Result<Sym, String> {
        self.syms.get(id as usize).copied().ok_or_else(|| format!("bad string table id {id}"))
    }

    pub fn get(&self, id: u32) -> Result<&'static str, String> {
        Ok(self.sym(id)?.resolve())
    }
}

// ---------------------------------------------------------------------------
// Artifact payloads (stage-cache entries)
// ---------------------------------------------------------------------------

/// Encode a stage artifact as a complete FFB container. `None` for
/// memory-only kinds (analysis).
pub fn encode_artifact(artifact: &Artifact) -> Option<Vec<u8>> {
    let mut st = StrTableBuilder::new();
    let mut e = Enc::default();
    match artifact {
        Artifact::Discovery(d) => enc_discovery(&mut e, d),
        Artifact::Stage1(s) => enc_stage1(&mut e, &mut st, s),
        Artifact::Stage2(s) => enc_stage2(&mut e, &mut st, s),
        Artifact::Stage3(s) => enc_stage3(&mut e, &mut st, s),
        Artifact::Stage4(s) => enc_stage4(&mut e, s),
        Artifact::Analysis(_) => return None, // memory-only
    }
    let mut b = FfbBuilder::new(artifact.kind().byte());
    b.section(SEC_STRINGS, st.encode());
    b.section(SEC_RECORDS, e.0);
    Some(b.finish())
}

/// Decode a stage-cache container. Stricter than [`Ffb::parse`]: the
/// kind byte must match and the build tag must equal the running
/// binary's — an artifact cache is never shared across builds.
pub fn decode_artifact(bytes: &[u8], kind: ArtifactKind) -> Result<Artifact, String> {
    let ffb = Ffb::parse(bytes)?;
    if ffb.build_tag != build_tag() {
        return Err("artifact was written by a different build".to_string());
    }
    if ffb.kind != kind.byte() {
        return Err(format!("artifact kind byte {} is not {:?}", ffb.kind, kind));
    }
    let st = StrTable::parse(ffb.section(SEC_STRINGS)?)?;
    let mut d = Dec::new(ffb.section(SEC_RECORDS)?);
    let artifact = match kind {
        ArtifactKind::Discovery => Artifact::Discovery(Arc::new(dec_discovery(&mut d)?)),
        ArtifactKind::Stage1 => Artifact::Stage1(Arc::new(dec_stage1(&mut d, &st)?)),
        ArtifactKind::Stage2 => Artifact::Stage2(Arc::new(dec_stage2(&mut d, &st)?)),
        ArtifactKind::Stage3 => Artifact::Stage3(Arc::new(dec_stage3(&mut d, &st)?)),
        ArtifactKind::Stage4 => Artifact::Stage4(Arc::new(dec_stage4(&mut d)?)),
        ArtifactKind::Analysis => return Err("analysis artifacts are memory-only".to_string()),
    };
    d.finish()?;
    Ok(artifact)
}

fn internal_fn_index(f: InternalFn) -> u8 {
    InternalFn::all().iter().position(|&g| g == f).expect("InternalFn::all is exhaustive") as u8
}

fn internal_fn_from_index(i: u8) -> Result<InternalFn, String> {
    InternalFn::all().get(i as usize).copied().ok_or_else(|| format!("bad InternalFn index {i}"))
}

fn enc_api(e: &mut Enc, st: &mut StrTableBuilder, api: ApiFn) {
    e.u32(st.add_static(api.name()));
}

fn dec_api(d: &mut Dec<'_>, st: &StrTable) -> Result<ApiFn, String> {
    let name = st.get(d.u32()?)?;
    ApiFn::from_name(name).ok_or_else(|| format!("unknown ApiFn '{name}'"))
}

fn enc_wait_reason(e: &mut Enc, r: WaitReason) {
    e.u8(match r {
        WaitReason::Explicit => 0,
        WaitReason::Implicit => 1,
        WaitReason::Conditional => 2,
        WaitReason::Private => 3,
    });
}

fn dec_wait_reason(d: &mut Dec<'_>) -> Result<WaitReason, String> {
    Ok(match d.u8()? {
        0 => WaitReason::Explicit,
        1 => WaitReason::Implicit,
        2 => WaitReason::Conditional,
        3 => WaitReason::Private,
        b => return Err(format!("bad WaitReason byte {b:#04x}")),
    })
}

fn enc_direction(e: &mut Enc, dir: Direction) {
    e.u8(match dir {
        Direction::HtoD => 0,
        Direction::DtoH => 1,
        Direction::DtoD => 2,
    });
}

fn dec_direction(d: &mut Dec<'_>) -> Result<Direction, String> {
    Ok(match d.u8()? {
        0 => Direction::HtoD,
        1 => Direction::DtoH,
        2 => Direction::DtoD,
        b => return Err(format!("bad Direction byte {b:#04x}")),
    })
}

fn enc_loc(e: &mut Enc, st: &mut StrTableBuilder, loc: &SourceLoc) {
    e.u32(st.add_static(loc.file));
    e.u32(loc.line);
}

fn dec_loc(d: &mut Dec<'_>, st: &StrTable) -> Result<SourceLoc, String> {
    // `SourceLoc.file` is `&'static str`; table entries were interned at
    // parse time (`crate::intern`), so artifacts loaded from disk share
    // one address space with live traces — and with the analysis layer's
    // interned site labels — at zero per-record cost.
    let file = st.get(d.u32()?)?;
    let line = d.u32()?;
    Ok(SourceLoc { file, line })
}

fn enc_op(e: &mut Enc, op: &OpInstance) {
    e.u64(op.sig);
    e.u64(op.occ);
}

fn dec_op(d: &mut Dec<'_>) -> Result<OpInstance, String> {
    Ok(OpInstance { sig: d.u64()?, occ: d.u64()? })
}

fn enc_stack(e: &mut Enc, st: &mut StrTableBuilder, stack: &StackTrace) {
    e.u64(stack.frames.len() as u64);
    for frame in &stack.frames {
        e.u32(st.add(&frame.function));
        enc_loc(e, st, &frame.callsite);
    }
}

fn dec_stack(d: &mut Dec<'_>, st: &StrTable) -> Result<StackTrace, String> {
    let n = d.seq_len()?;
    let mut frames = Vec::with_capacity(n);
    for _ in 0..n {
        // `Frame.function` is a Cow, so borrowing the interned text
        // avoids a per-frame String.
        let function = st.get(d.u32()?)?;
        let callsite = dec_loc(d, st)?;
        frames.push(Frame::new(function, callsite));
    }
    Ok(StackTrace { frames })
}

fn enc_discovery(e: &mut Enc, disc: &Discovery) {
    e.u8(internal_fn_index(disc.sync_fn));
    let mut waits: Vec<(InternalFn, u64)> = disc.waits.iter().map(|(&f, &ns)| (f, ns)).collect();
    waits.sort();
    e.u64(waits.len() as u64);
    for (f, ns) in waits {
        e.u8(internal_fn_index(f));
        e.u64(ns);
    }
}

fn dec_discovery(d: &mut Dec<'_>) -> Result<Discovery, String> {
    let sync_fn = internal_fn_from_index(d.u8()?)?;
    let n = d.seq_len()?;
    let mut waits = HashMap::with_capacity(n);
    for _ in 0..n {
        let f = internal_fn_from_index(d.u8()?)?;
        let ns = d.u64()?;
        waits.insert(f, ns);
    }
    Ok(Discovery { sync_fn, waits })
}

fn enc_stage1(e: &mut Enc, st: &mut StrTableBuilder, s: &Stage1Result) {
    e.u64(s.exec_time_ns);
    e.u64(s.total_wait_ns);
    e.u64(s.sync_hits);
    let mut apis: Vec<(ApiFn, u64)> = s.sync_apis.iter().map(|(&a, &n)| (a, n)).collect();
    apis.sort();
    e.u64(apis.len() as u64);
    for (api, hits) in apis {
        enc_api(e, st, api);
        e.u64(hits);
    }
}

fn dec_stage1(d: &mut Dec<'_>, st: &StrTable) -> Result<Stage1Result, String> {
    let exec_time_ns = d.u64()?;
    let total_wait_ns = d.u64()?;
    let sync_hits = d.u64()?;
    let n = d.seq_len()?;
    let mut sync_apis = HashMap::with_capacity(n);
    for _ in 0..n {
        let api = dec_api(d, st)?;
        let hits = d.u64()?;
        sync_apis.insert(api, hits);
    }
    Ok(Stage1Result { exec_time_ns, sync_apis, total_wait_ns, sync_hits })
}

fn enc_transfer(e: &mut Enc, t: &TransferRec) {
    enc_direction(e, t.dir);
    e.u64(t.bytes);
    e.u64(t.host);
    e.u64(t.dev);
    e.bool(t.pinned);
    e.bool(t.is_async);
}

fn dec_transfer(d: &mut Dec<'_>) -> Result<TransferRec, String> {
    Ok(TransferRec {
        dir: dec_direction(d)?,
        bytes: d.u64()?,
        host: d.u64()?,
        dev: d.u64()?,
        pinned: d.bool()?,
        is_async: d.bool()?,
    })
}

fn enc_call(e: &mut Enc, st: &mut StrTableBuilder, c: &TracedCall) {
    e.u64(c.seq as u64);
    enc_api(e, st, c.api);
    enc_loc(e, st, &c.site);
    enc_stack(e, st, &c.stack);
    e.u64(c.sig);
    e.u64(c.folded_sig);
    e.u64(c.occ);
    e.u64(c.enter_ns);
    e.u64(c.exit_ns);
    e.u64(c.wait_ns);
    e.opt(&c.wait_reason, |e, &r| enc_wait_reason(e, r));
    e.opt(&c.transfer, enc_transfer);
    e.bool(c.is_launch);
}

fn dec_call(d: &mut Dec<'_>, st: &StrTable) -> Result<TracedCall, String> {
    Ok(TracedCall {
        seq: d.u64()? as usize,
        api: dec_api(d, st)?,
        site: dec_loc(d, st)?,
        stack: dec_stack(d, st)?,
        sig: d.u64()?,
        folded_sig: d.u64()?,
        occ: d.u64()?,
        enter_ns: d.u64()?,
        exit_ns: d.u64()?,
        wait_ns: d.u64()?,
        wait_reason: d.opt(dec_wait_reason)?,
        transfer: d.opt(dec_transfer)?,
        is_launch: d.bool()?,
    })
}

fn enc_stage2(e: &mut Enc, st: &mut StrTableBuilder, s: &Stage2Result) {
    e.u64(s.exec_time_ns);
    e.u64(s.calls.len() as u64);
    for c in &s.calls {
        enc_call(e, st, c);
    }
}

fn dec_stage2(d: &mut Dec<'_>, st: &StrTable) -> Result<Stage2Result, String> {
    let exec_time_ns = d.u64()?;
    let n = d.seq_len()?;
    let mut calls = Vec::with_capacity(n);
    for _ in 0..n {
        calls.push(dec_call(d, st)?);
    }
    Ok(Stage2Result { exec_time_ns, calls })
}

fn enc_op_set(e: &mut Enc, set: &HashSet<OpInstance>) {
    let mut ops: Vec<OpInstance> = set.iter().copied().collect();
    ops.sort();
    e.u64(ops.len() as u64);
    for op in &ops {
        enc_op(e, op);
    }
}

fn dec_op_set(d: &mut Dec<'_>) -> Result<HashSet<OpInstance>, String> {
    let n = d.seq_len()?;
    let mut set = HashSet::with_capacity(n);
    for _ in 0..n {
        set.insert(dec_op(d)?);
    }
    Ok(set)
}

fn enc_stage3(e: &mut Enc, st: &mut StrTableBuilder, s: &Stage3Result) {
    enc_op_set(e, &s.required_syncs);
    enc_op_set(e, &s.observed_syncs);
    e.u64(s.accesses.len() as u64);
    for a in &s.accesses {
        enc_op(e, &a.sync);
        enc_loc(e, st, &a.access_site);
        e.u64(a.rough_gap_ns);
    }
    e.u64(s.duplicates.len() as u64);
    for dup in &s.duplicates {
        enc_op(e, &dup.op);
        enc_loc(e, st, &dup.site);
        enc_loc(e, st, &dup.first_site);
        e.u64(dup.bytes);
        e.u128(dup.digest.0);
    }
    let mut sites: Vec<SourceLoc> = s.first_use_sites.iter().copied().collect();
    sites.sort();
    e.u64(sites.len() as u64);
    for site in &sites {
        enc_loc(e, st, site);
    }
    e.u64(s.hashed_bytes);
    e.u64(s.exec_time_sync_ns);
    e.u64(s.exec_time_hash_ns);
    e.u64(s.exec_time_ns);
}

fn dec_stage3(d: &mut Dec<'_>, st: &StrTable) -> Result<Stage3Result, String> {
    let required_syncs = dec_op_set(d)?;
    let observed_syncs = dec_op_set(d)?;
    let n = d.seq_len()?;
    let mut accesses = Vec::with_capacity(n);
    for _ in 0..n {
        accesses.push(ProtectedAccess {
            sync: dec_op(d)?,
            access_site: dec_loc(d, st)?,
            rough_gap_ns: d.u64()?,
        });
    }
    let n = d.seq_len()?;
    let mut duplicates = Vec::with_capacity(n);
    for _ in 0..n {
        duplicates.push(DuplicateTransfer {
            op: dec_op(d)?,
            site: dec_loc(d, st)?,
            first_site: dec_loc(d, st)?,
            bytes: d.u64()?,
            digest: Digest(d.u128()?),
        });
    }
    let n = d.seq_len()?;
    let mut first_use_sites = HashSet::with_capacity(n);
    for _ in 0..n {
        first_use_sites.insert(dec_loc(d, st)?);
    }
    Ok(Stage3Result {
        required_syncs,
        observed_syncs,
        accesses,
        duplicates,
        first_use_sites,
        hashed_bytes: d.u64()?,
        exec_time_sync_ns: d.u64()?,
        exec_time_hash_ns: d.u64()?,
        exec_time_ns: d.u64()?,
    })
}

/// Stage 4 is stored columnar — `sig[]`, `occ[]`, `first_use_ns[]` —
/// so the sync-use gap table reads back as three straight column copies.
fn enc_stage4(e: &mut Enc, s: &Stage4Result) {
    let mut gaps: Vec<(OpInstance, u64)> = s.first_use_ns.iter().map(|(&k, &v)| (k, v)).collect();
    gaps.sort();
    e.u64(gaps.len() as u64);
    for (op, _) in &gaps {
        e.u64(op.sig);
    }
    for (op, _) in &gaps {
        e.u64(op.occ);
    }
    for (_, ns) in &gaps {
        e.u64(*ns);
    }
    e.u64(s.exec_time_ns);
}

fn dec_stage4(d: &mut Dec<'_>) -> Result<Stage4Result, String> {
    let n = d.col_len(24)?;
    let sig = d.take(8 * n)?;
    let occ = d.take(8 * n)?;
    let ns = d.take(8 * n)?;
    let mut first_use_ns = HashMap::with_capacity(n);
    for i in 0..n {
        first_use_ns
            .insert(OpInstance { sig: col_u64(sig, i), occ: col_u64(occ, i) }, col_u64(ns, i));
    }
    Ok(Stage4Result { first_use_ns, exec_time_ns: d.u64()? })
}

/// Reusable zero-allocation reader for a Stage 4 container: after one
/// warmup sizes the column vectors, repeat reads touch the heap zero
/// times (asserted by `bench_codec --smoke`).
#[derive(Default)]
pub struct Stage4Cols {
    pub sig: Vec<u64>,
    pub occ: Vec<u64>,
    pub first_use_ns: Vec<u64>,
    pub exec_time_ns: u64,
}

impl Stage4Cols {
    pub fn new() -> Self {
        Stage4Cols::default()
    }

    pub fn len(&self) -> usize {
        self.sig.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sig.is_empty()
    }

    /// One pass over a whole Stage 4 FFB file into reused columns.
    pub fn read(&mut self, file: &[u8]) -> Result<(), String> {
        let ffb = Ffb::parse(file)?;
        if ffb.kind != ArtifactKind::Stage4.byte() {
            return Err(format!("not a stage4 container (kind {})", ffb.kind));
        }
        let mut d = Dec::new(ffb.section(SEC_RECORDS)?);
        let n = d.col_len(24)?;
        let sig = d.take(8 * n)?;
        let occ = d.take(8 * n)?;
        let ns = d.take(8 * n)?;
        extend_u64s(&mut self.sig, sig);
        extend_u64s(&mut self.occ, occ);
        extend_u64s(&mut self.first_use_ns, ns);
        self.exec_time_ns = d.u64()?;
        d.finish()
    }
}

// ---------------------------------------------------------------------------
// Generic JSON documents (reports, telemetry, converted files)
// ---------------------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_ARR: u8 = 6;
const TAG_OBJ: u8 = 7;

/// Mirror of the JSON parser's recursion guard.
const MAX_DOC_DEPTH: usize = 512;

/// Encode any [`Json`] document as an FFB container ([`KIND_DOC`]).
/// All string content — values and object keys — goes through the
/// string table, so documents with repeated keys (every "cells" array)
/// store each key once. Floats are stored as raw bits; together with
/// exact `i128` integers this makes bin→json re-rendering byte-identical
/// to the original pretty form.
pub fn encode_doc(doc: &Json) -> Vec<u8> {
    let mut st = StrTableBuilder::new();
    let mut e = Enc::default();
    enc_json(&mut e, &mut st, doc);
    let mut b = FfbBuilder::new(KIND_DOC);
    b.section(SEC_STRINGS, st.encode());
    b.section(SEC_DOC, e.0);
    b.finish()
}

/// Decode a [`KIND_DOC`] container back into a [`Json`] tree. Strings
/// come back as [`Json::Sym`] over the file's interned table — content-
/// equal to the original `Str` values and serialized identically.
pub fn decode_doc(bytes: &[u8]) -> Result<Json, String> {
    let ffb = Ffb::parse(bytes)?;
    if ffb.kind != KIND_DOC {
        return Err(format!("not a document container (kind {})", ffb.kind));
    }
    let st = StrTable::parse(ffb.section(SEC_STRINGS)?)?;
    let mut d = Dec::new(ffb.section(SEC_DOC)?);
    let doc = dec_json(&mut d, &st, 0)?;
    d.finish()?;
    Ok(doc)
}

fn enc_json(e: &mut Enc, st: &mut StrTableBuilder, v: &Json) {
    match v {
        Json::Null => e.u8(TAG_NULL),
        Json::Bool(false) => e.u8(TAG_FALSE),
        Json::Bool(true) => e.u8(TAG_TRUE),
        Json::Int(i) => {
            e.u8(TAG_INT);
            e.u128(*i as u128);
        }
        Json::Float(f) => {
            e.u8(TAG_FLOAT);
            e.f64(*f);
        }
        Json::Str(s) => {
            e.u8(TAG_STR);
            let id = st.add(s);
            e.u32(id);
        }
        Json::Static(s) => {
            e.u8(TAG_STR);
            let id = st.add_static(s);
            e.u32(id);
        }
        Json::Sym(sym) => {
            e.u8(TAG_STR);
            let id = st.add_sym(*sym);
            e.u32(id);
        }
        Json::Arr(items) => {
            e.u8(TAG_ARR);
            e.u32(items.len() as u32);
            for item in items {
                enc_json(e, st, item);
            }
        }
        Json::Obj(fields) => {
            e.u8(TAG_OBJ);
            e.u32(fields.len() as u32);
            for (k, v) in fields {
                let id = st.add(k);
                e.u32(id);
                enc_json(e, st, v);
            }
        }
    }
}

fn dec_json(d: &mut Dec<'_>, st: &StrTable, depth: usize) -> Result<Json, String> {
    if depth > MAX_DOC_DEPTH {
        return Err("document nested too deeply".to_string());
    }
    Ok(match d.u8()? {
        TAG_NULL => Json::Null,
        TAG_FALSE => Json::Bool(false),
        TAG_TRUE => Json::Bool(true),
        TAG_INT => Json::Int(d.u128()? as i128),
        TAG_FLOAT => Json::Float(d.f64()?),
        TAG_STR => Json::Sym(st.sym(d.u32()?)?),
        TAG_ARR => {
            let n = d.u32()? as usize;
            if n > d.remaining() {
                return Err(format!("implausible array length {n}"));
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(dec_json(d, st, depth + 1)?);
            }
            Json::Arr(items)
        }
        TAG_OBJ => {
            let n = d.u32()? as usize;
            if n > d.remaining() {
                return Err(format!("implausible object length {n}"));
            }
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                let key = st.get(d.u32()?)?.to_string();
                fields.push((key, dec_json(d, st, depth + 1)?));
            }
            Json::Obj(fields)
        }
        b => return Err(format!("bad value tag {b:#04x}")),
    })
}

// ---------------------------------------------------------------------------
// Typed sweep matrices (binary shards and sweep exports)
// ---------------------------------------------------------------------------

/// Encode a sweep matrix as a [`KIND_SWEEP`] container: one header
/// section (app, workload, layout, shard, axes) and one columnar cells
/// section. `Err` if any cell's assignment disagrees with the axes (a
/// hand-built matrix; `run_sweep` can't produce one).
pub fn encode_sweep(m: &SweepMatrix) -> Result<Vec<u8>, String> {
    for c in &m.cells {
        if c.assignment.len() != m.axes.len()
            || c.assignment.iter().zip(&m.axes).any(|((k, _), a)| *k != a.field)
        {
            return Err(format!("cell {} assignment does not match the axes", c.index));
        }
    }
    let mut st = StrTableBuilder::new();
    let mut h = Enc::default();
    h.u32(st.add(&m.app_name));
    h.u32(st.add(&m.workload));
    h.u8(match m.layout {
        AxisLayout::Cartesian => 0,
        AxisLayout::Paired => 1,
    });
    h.opt(&m.shard, |h, s| {
        h.u64(s.k as u64);
        h.u64(s.n as u64);
    });
    h.u64(m.total_cells as u64);
    h.u32(m.axes.len() as u32);
    for a in &m.axes {
        let id = st.add(&a.field);
        h.u32(id);
        h.u64(a.values.len() as u64);
        for &v in &a.values {
            h.u64(v);
        }
    }

    let mut c = Enc::default();
    c.u64(m.cells.len() as u64);
    c.u32(m.axes.len() as u32);
    for cell in &m.cells {
        c.u64(cell.index as u64);
    }
    for axis in 0..m.axes.len() {
        for cell in &m.cells {
            c.u64(cell.assignment[axis].1);
        }
    }
    for cell in &m.cells {
        c.u64(cell.baseline_exec_ns);
    }
    for cell in &m.cells {
        c.u64(cell.total_benefit_ns);
    }
    for cell in &m.cells {
        c.f64(cell.benefit_pct);
    }
    for cell in &m.cells {
        c.u64(cell.problem_count as u64);
    }
    for cell in &m.cells {
        c.u64(cell.sync_issues as u64);
    }
    for cell in &m.cells {
        c.u64(cell.transfer_issues as u64);
    }
    for cell in &m.cells {
        c.u64(cell.sequence_count as u64);
    }
    for cell in &m.cells {
        c.f64(cell.collection_overhead_factor);
    }

    let mut b = FfbBuilder::new(KIND_SWEEP);
    b.section(SEC_STRINGS, st.encode());
    b.section(SEC_SWEEP_HEADER, h.0);
    b.section(SEC_SWEEP_CELLS, c.0);
    Ok(b.finish())
}

/// Decode a [`KIND_SWEEP`] container back into a [`SweepMatrix`]. The
/// summary is recomputed from the decoded cells — floats round-trip as
/// raw bits, so the argmin/argmax rows match the producing run exactly.
/// `cache_stats` is diagnostic-only and never serialized.
pub fn decode_sweep(bytes: &[u8]) -> Result<SweepMatrix, String> {
    let ffb = Ffb::parse(bytes)?;
    if ffb.kind != KIND_SWEEP {
        return Err(format!("not a sweep container (kind {})", ffb.kind));
    }
    let st = StrTable::parse(ffb.section(SEC_STRINGS)?)?;
    let mut h = Dec::new(ffb.section(SEC_SWEEP_HEADER)?);
    let app_name = st.get(h.u32()?)?.to_string();
    let workload = st.get(h.u32()?)?.to_string();
    let layout = match h.u8()? {
        0 => AxisLayout::Cartesian,
        1 => AxisLayout::Paired,
        b => return Err(format!("bad layout byte {b:#04x}")),
    };
    let shard = match h.opt(|h| Ok((h.u64()?, h.u64()?)))? {
        None => None,
        Some((k, n)) => {
            let k = usize::try_from(k).map_err(|_| "shard k overflow")?;
            let n = usize::try_from(n).map_err(|_| "shard n overflow")?;
            Some(Shard::new(k, n)?)
        }
    };
    let total_cells = usize::try_from(h.u64()?).map_err(|_| "total_cells overflow")?;
    let n_axes = h.u32()? as usize;
    let mut axes = Vec::with_capacity(n_axes.min(h.remaining()));
    for _ in 0..n_axes {
        let field = st.get(h.u32()?)?.to_string();
        let n = h.col_len(8)?;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(h.u64()?);
        }
        axes.push(Axis { field, values });
    }
    h.finish()?;

    let mut cols = SweepCellCols::new();
    cols.read(bytes)?;
    if cols.axes != axes.len() {
        return Err(format!(
            "cells carry {} axes but the header declares {}",
            cols.axes,
            axes.len()
        ));
    }
    let n = cols.len();
    let mut cells = Vec::with_capacity(n);
    for i in 0..n {
        let assignment = axes
            .iter()
            .enumerate()
            .map(|(a, ax)| (ax.field.clone(), cols.axis_values[a * n + i]))
            .collect();
        cells.push(SweepCell {
            index: usize::try_from(cols.index[i]).map_err(|_| "cell index overflow")?,
            assignment,
            baseline_exec_ns: cols.baseline_exec_ns[i],
            total_benefit_ns: cols.total_benefit_ns[i],
            benefit_pct: cols.benefit_pct[i],
            problem_count: cols.problem_count[i] as usize,
            sync_issues: cols.sync_issues[i] as usize,
            transfer_issues: cols.transfer_issues[i] as usize,
            sequence_count: cols.sequence_count[i] as usize,
            collection_overhead_factor: cols.collection_overhead_factor[i],
        });
    }
    let summary: SweepSummary = SweepMatrix::summarize(&cells);
    Ok(SweepMatrix {
        app_name,
        workload,
        axes,
        layout,
        total_cells,
        shard,
        cells,
        summary,
        cache_stats: None,
    })
}

/// Reusable zero-allocation reader for the cells section of a sweep
/// container — the `--merge` and serve-path ingestion hot loop. After a
/// warmup read sizes the vectors, repeat reads allocate nothing.
#[derive(Default)]
pub struct SweepCellCols {
    /// Axes per cell (assignment values are axis-major:
    /// `axis_values[a * len + i]` is cell `i`'s value on axis `a`).
    pub axes: usize,
    pub index: Vec<u64>,
    pub axis_values: Vec<u64>,
    pub baseline_exec_ns: Vec<u64>,
    pub total_benefit_ns: Vec<u64>,
    pub benefit_pct: Vec<f64>,
    pub problem_count: Vec<u64>,
    pub sync_issues: Vec<u64>,
    pub transfer_issues: Vec<u64>,
    pub sequence_count: Vec<u64>,
    pub collection_overhead_factor: Vec<f64>,
}

impl SweepCellCols {
    pub fn new() -> Self {
        SweepCellCols::default()
    }

    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// One pass over a whole sweep FFB file into reused columns.
    pub fn read(&mut self, file: &[u8]) -> Result<(), String> {
        let ffb = Ffb::parse(file)?;
        if ffb.kind != KIND_SWEEP {
            return Err(format!("not a sweep container (kind {})", ffb.kind));
        }
        let mut d = Dec::new(ffb.section(SEC_SWEEP_CELLS)?);
        let n = d.col_len(8)?;
        let n_axes = d.u32()? as usize;
        // 9 fixed columns + one per axis, 8 bytes per element each.
        let cols = n_axes.checked_add(9).ok_or("axis count overflow")?;
        let total = n.checked_mul(8 * cols).ok_or("cells size overflow")?;
        if total > d.remaining() {
            return Err(format!("implausible cell count {n}"));
        }
        self.axes = n_axes;
        extend_u64s(&mut self.index, d.take(8 * n)?);
        self.axis_values.clear();
        for _ in 0..n_axes {
            let col = d.take(8 * n)?;
            self.axis_values
                .extend(col.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())));
        }
        extend_u64s(&mut self.baseline_exec_ns, d.take(8 * n)?);
        extend_u64s(&mut self.total_benefit_ns, d.take(8 * n)?);
        extend_f64s(&mut self.benefit_pct, d.take(8 * n)?);
        extend_u64s(&mut self.problem_count, d.take(8 * n)?);
        extend_u64s(&mut self.sync_issues, d.take(8 * n)?);
        extend_u64s(&mut self.transfer_issues, d.take(8 * n)?);
        extend_u64s(&mut self.sequence_count, d.take(8 * n)?);
        extend_f64s(&mut self.collection_overhead_factor, d.take(8 * n)?);
        d.finish()
    }
}

/// Decode any FFB container into a JSON document: [`KIND_DOC`] directly,
/// [`KIND_SWEEP`] via the typed decoder + [`crate::sweep::sweep_to_json`]
/// (byte-identical to the producing run's `--format json` output).
/// Artifact kinds are cache-internal and not convertible.
pub fn decode_any_doc(bytes: &[u8]) -> Result<Json, String> {
    let ffb = Ffb::parse(bytes)?;
    match ffb.kind {
        KIND_DOC => decode_doc(bytes),
        KIND_SWEEP => Ok(crate::sweep::sweep_to_json(&decode_sweep(bytes)?)),
        k => Err(format!("container kind {k} is not a convertible document")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_loc(line: u32) -> SourceLoc {
        SourceLoc::new("als.cpp", line)
    }

    fn sample_stage2() -> Stage2Result {
        Stage2Result {
            exec_time_ns: 123_456,
            calls: vec![TracedCall {
                seq: 0,
                api: ApiFn::CudaMemcpy,
                site: sample_loc(856),
                stack: StackTrace {
                    frames: vec![
                        Frame::new("main", sample_loc(1)),
                        Frame::new("thrust::copy<float>", sample_loc(856)),
                    ],
                },
                sig: 0xdead_beef,
                folded_sig: 0xfeed_face,
                occ: 3,
                enter_ns: 10,
                exit_ns: 90,
                wait_ns: 40,
                wait_reason: Some(WaitReason::Implicit),
                transfer: Some(TransferRec {
                    dir: Direction::DtoH,
                    bytes: 4096,
                    host: 0x1000,
                    dev: 0x2000,
                    pinned: false,
                    is_async: true,
                }),
                is_launch: false,
            }],
        }
    }

    fn sample_stage3() -> Stage3Result {
        Stage3Result {
            required_syncs: [OpInstance { sig: 1, occ: 0 }].into_iter().collect(),
            observed_syncs: [OpInstance { sig: 1, occ: 0 }, OpInstance { sig: 2, occ: 1 }]
                .into_iter()
                .collect(),
            accesses: vec![ProtectedAccess {
                sync: OpInstance { sig: 1, occ: 0 },
                access_site: sample_loc(901),
                rough_gap_ns: 77,
            }],
            duplicates: vec![DuplicateTransfer {
                op: OpInstance { sig: 9, occ: 2 },
                site: sample_loc(10),
                first_site: sample_loc(5),
                bytes: 1 << 20,
                digest: Digest(0x1234_5678_9abc_def0_1122_3344_5566_7788),
            }],
            first_use_sites: [sample_loc(901), sample_loc(905)].into_iter().collect(),
            hashed_bytes: 1 << 21,
            exec_time_sync_ns: 1000,
            exec_time_hash_ns: 2000,
            exec_time_ns: 3000,
        }
    }

    fn roundtrip(artifact: Artifact) -> Artifact {
        let kind = artifact.kind();
        let bytes = encode_artifact(&artifact).expect("serializable kind");
        decode_artifact(&bytes, kind).expect("decodes")
    }

    #[test]
    fn discovery_roundtrips() {
        let d = Discovery {
            sync_fn: InternalFn::SyncWait,
            waits: [(InternalFn::SyncWait, 500), (InternalFn::Enqueue, 0)].into_iter().collect(),
        };
        match roundtrip(Artifact::Discovery(Arc::new(d.clone()))) {
            Artifact::Discovery(got) => {
                assert_eq!(got.sync_fn, d.sync_fn);
                assert_eq!(got.waits, d.waits);
            }
            other => panic!("wrong kind {:?}", other.kind()),
        }
    }

    #[test]
    fn stage1_roundtrips() {
        let s = Stage1Result {
            exec_time_ns: 42,
            sync_apis: [(ApiFn::CudaFree, 3), (ApiFn::CudaMemcpy, 7)].into_iter().collect(),
            total_wait_ns: 99,
            sync_hits: 10,
        };
        match roundtrip(Artifact::Stage1(Arc::new(s.clone()))) {
            Artifact::Stage1(got) => {
                assert_eq!(got.exec_time_ns, s.exec_time_ns);
                assert_eq!(got.sync_apis, s.sync_apis);
                assert_eq!(got.total_wait_ns, s.total_wait_ns);
                assert_eq!(got.sync_hits, s.sync_hits);
            }
            other => panic!("wrong kind {:?}", other.kind()),
        }
    }

    #[test]
    fn stage2_roundtrips_including_stacks() {
        let s = sample_stage2();
        match roundtrip(Artifact::Stage2(Arc::new(s.clone()))) {
            Artifact::Stage2(got) => {
                assert_eq!(got.exec_time_ns, s.exec_time_ns);
                assert_eq!(got.calls.len(), s.calls.len());
                let (a, b) = (&got.calls[0], &s.calls[0]);
                assert_eq!(a.seq, b.seq);
                assert_eq!(a.api, b.api);
                assert_eq!(a.site, b.site);
                assert_eq!(a.stack, b.stack);
                assert_eq!(a.sig, b.sig);
                assert_eq!(a.folded_sig, b.folded_sig);
                assert_eq!(a.occ, b.occ);
                assert_eq!((a.enter_ns, a.exit_ns, a.wait_ns), (b.enter_ns, b.exit_ns, b.wait_ns));
                assert_eq!(a.wait_reason, b.wait_reason);
                assert_eq!(a.transfer, b.transfer);
                assert_eq!(a.is_launch, b.is_launch);
                // Decoded file names intern to the same address space the
                // rest of the pipeline uses for synthetic addresses.
                assert_eq!(a.site.addr(), b.site.addr());
            }
            other => panic!("wrong kind {:?}", other.kind()),
        }
    }

    #[test]
    fn stage3_roundtrips() {
        let s = sample_stage3();
        match roundtrip(Artifact::Stage3(Arc::new(s.clone()))) {
            Artifact::Stage3(got) => {
                assert_eq!(got.required_syncs, s.required_syncs);
                assert_eq!(got.observed_syncs, s.observed_syncs);
                assert_eq!(got.accesses.len(), 1);
                assert_eq!(got.accesses[0].sync, s.accesses[0].sync);
                assert_eq!(got.accesses[0].access_site, s.accesses[0].access_site);
                assert_eq!(got.duplicates[0].digest, s.duplicates[0].digest);
                assert_eq!(got.first_use_sites, s.first_use_sites);
                assert_eq!(got.hashed_bytes, s.hashed_bytes);
                assert_eq!(got.exec_time_ns, s.exec_time_ns);
            }
            other => panic!("wrong kind {:?}", other.kind()),
        }
    }

    #[test]
    fn stage4_roundtrips() {
        let mut s = Stage4Result::default();
        s.first_use_ns.insert(OpInstance { sig: 5, occ: 0 }, 111);
        s.first_use_ns.insert(OpInstance { sig: 5, occ: 1 }, 222);
        s.exec_time_ns = 7;
        match roundtrip(Artifact::Stage4(Arc::new(s.clone()))) {
            Artifact::Stage4(got) => {
                assert_eq!(got.first_use_ns, s.first_use_ns);
                assert_eq!(got.exec_time_ns, s.exec_time_ns);
            }
            other => panic!("wrong kind {:?}", other.kind()),
        }
    }

    #[test]
    fn encoding_is_independent_of_hash_iteration_order() {
        // Build the same logical map twice with different insertion orders;
        // the encoded bytes must match.
        let mut a = Stage4Result::default();
        let mut b = Stage4Result::default();
        for i in 0..100u64 {
            a.first_use_ns.insert(OpInstance { sig: i, occ: 0 }, i * 10);
        }
        for i in (0..100u64).rev() {
            b.first_use_ns.insert(OpInstance { sig: i, occ: 0 }, i * 10);
        }
        let ea = encode_artifact(&Artifact::Stage4(Arc::new(a))).unwrap();
        let eb = encode_artifact(&Artifact::Stage4(Arc::new(b))).unwrap();
        assert_eq!(ea, eb);
    }

    #[test]
    fn artifact_decode_rejects_any_corruption() {
        let bytes = encode_artifact(&Artifact::Stage2(Arc::new(sample_stage2()))).unwrap();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(decode_artifact(&bad, ArtifactKind::Stage2).is_err(), "mutation at byte {i}");
        }
        for end in 0..bytes.len() {
            assert!(
                decode_artifact(&bytes[..end], ArtifactKind::Stage2).is_err(),
                "truncation to {end}"
            );
        }
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(decode_artifact(&extra, ArtifactKind::Stage2).is_err(), "trailing bytes rejected");
        // A kind mismatch is rejected even with pristine bytes.
        assert!(decode_artifact(&bytes, ArtifactKind::Stage3).is_err());
    }

    #[test]
    fn artifact_decode_rejects_foreign_build_tags() {
        let mut bytes =
            encode_artifact(&Artifact::Stage4(Arc::new(Stage4Result::default()))).unwrap();
        bytes[12] ^= 0xff; // build tag, outside the checksum's coverage
        assert!(Ffb::parse(&bytes).is_ok(), "container itself is intact");
        assert!(!header_is_current(&bytes), "cache hygiene sees it as stale");
        assert!(decode_artifact(&bytes, ArtifactKind::Stage4).is_err(), "cache path refuses it");
    }

    fn doc() -> Json {
        Json::obj([
            ("app", Json::Str("als".to_string())),
            ("big", Json::Int(i128::from(u64::MAX) * 3)),
            ("neg", Json::Int(-7)),
            ("pct", Json::Float(12.345678901234567)),
            ("flag", Json::Bool(true)),
            ("off", Json::Bool(false)),
            ("nothing", Json::Null),
            ("text", Json::Str("quote \" slash \\ tab\t".to_string())),
            ("sym", Json::Sym(crate::intern::intern("codec-sym-probe"))),
            ("static", Json::Static("codec-static-probe")),
            (
                "cells",
                Json::arr([
                    Json::obj([("k", Json::Int(1)), ("v", Json::Float(2.25))]),
                    Json::obj([("k", Json::Int(2)), ("v", Json::Float(0.5))]),
                ]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ])
    }

    #[test]
    fn container_roundtrips_and_checks_integrity() {
        let mut b = FfbBuilder::new(KIND_DOC);
        b.section(SEC_STRINGS, vec![1, 2, 3]);
        b.section(SEC_DOC, vec![9; 40]);
        let bytes = b.finish();
        assert!(is_ffb(&bytes));
        assert!(header_is_current(&bytes));
        let ffb = Ffb::parse(&bytes).unwrap();
        assert_eq!(ffb.kind, KIND_DOC);
        assert_eq!(ffb.build_tag, build_tag());
        assert_eq!(ffb.section(SEC_STRINGS).unwrap(), &[1, 2, 3]);
        assert_eq!(ffb.section(SEC_DOC).unwrap().len(), 40);
        assert!(ffb.section(SEC_RECORDS).is_err(), "absent section is an error");

        // Any single-byte corruption is rejected, wherever it lands —
        // except the build tag (bytes 12..20), which parse deliberately
        // ignores so `diogenes convert` can read files from other builds
        // (the artifact-cache path checks it separately).
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            if (12..20).contains(&i) {
                assert!(Ffb::parse(&bad).is_ok(), "build-tag byte {i} is not integrity-checked");
            } else {
                assert!(Ffb::parse(&bad).is_err(), "mutation at byte {i} must not parse");
            }
        }
        // Every strict prefix is rejected too.
        for end in 0..bytes.len() {
            assert!(Ffb::parse(&bytes[..end]).is_err(), "truncation to {end} must not parse");
        }
    }

    #[test]
    fn string_table_interns_once_per_file() {
        let mut b = StrTableBuilder::new();
        let a = b.add("codec-table-a");
        let a2 = b.add("codec-table-a");
        let c = b.add_static("codec-table-b");
        assert_eq!(a, a2, "dedup within the table");
        assert_ne!(a, c);
        let t = StrTable::parse(&b.encode()).unwrap();
        assert_eq!(t.get(a).unwrap(), "codec-table-a");
        assert_eq!(t.get(c).unwrap(), "codec-table-b");
        assert!(t.get(99).is_err());
        // The parsed entries share the interner's address space.
        assert!(std::ptr::eq(t.get(a).unwrap(), crate::intern::intern("codec-table-a").resolve()));
    }

    #[test]
    fn doc_roundtrip_is_byte_identical() {
        let d = doc();
        let bytes = encode_doc(&d);
        let back = decode_doc(&bytes).unwrap();
        assert_eq!(back, d, "content equality across Str/Sym variants");
        assert_eq!(back.to_string_pretty(), d.to_string_pretty());
        assert_eq!(back.to_string_compact(), d.to_string_compact());
        assert_eq!(decode_any_doc(&bytes).unwrap().to_string_pretty(), d.to_string_pretty());
    }

    #[test]
    fn doc_decode_rejects_corruption_without_panicking() {
        let d = doc();
        let bytes = encode_doc(&d);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x11;
            if (12..20).contains(&i) {
                // Build-tag bytes: documents decode across builds.
                let back = decode_doc(&bad).expect("foreign build tags decode fine");
                assert_eq!(back.to_string_pretty(), d.to_string_pretty());
            } else {
                assert!(decode_doc(&bad).is_err(), "mutation at byte {i}");
            }
        }
        for end in 0..bytes.len() {
            assert!(decode_doc(&bytes[..end]).is_err(), "truncation to {end}");
        }
    }

    #[test]
    fn non_finite_floats_render_identically_after_roundtrip() {
        let d = Json::obj([("nan", Json::Float(f64::NAN)), ("inf", Json::Float(f64::INFINITY))]);
        let back = decode_doc(&encode_doc(&d)).unwrap();
        // NaN breaks value equality, but both sides render as "null" —
        // byte identity is the contract that matters.
        assert_eq!(back.to_string_pretty(), d.to_string_pretty());
    }

    #[test]
    fn doc_depth_is_bounded() {
        let mut v = Json::Null;
        for _ in 0..600 {
            v = Json::Arr(vec![v]);
        }
        let bytes = encode_doc(&v);
        assert!(decode_doc(&bytes).is_err(), "over-deep documents are rejected");
    }

    fn sample_matrix(shard: Option<Shard>) -> SweepMatrix {
        let axes = vec![
            Axis::new("cost.free_base_ns", vec![1000, 2000]),
            Axis::new("driver.unified_memset_penalty", vec![1, 30]),
        ];
        let cells: Vec<SweepCell> = (0..4usize)
            .map(|i| SweepCell {
                index: i,
                assignment: vec![
                    ("cost.free_base_ns".to_string(), 1000 * (1 + (i as u64 & 1))),
                    ("driver.unified_memset_penalty".to_string(), if i < 2 { 1 } else { 30 }),
                ],
                baseline_exec_ns: 1_000_000 + i as u64,
                total_benefit_ns: 5_000 * i as u64,
                benefit_pct: 0.1 * i as f64 + 0.05,
                problem_count: i + 1,
                sync_issues: i,
                transfer_issues: 1,
                sequence_count: 2,
                collection_overhead_factor: 3.5 - i as f64 * 0.25,
            })
            .collect();
        let summary = SweepMatrix::summarize(&cells);
        SweepMatrix {
            app_name: "als".to_string(),
            workload: "test-workload".to_string(),
            axes,
            layout: AxisLayout::Cartesian,
            total_cells: 4,
            shard,
            cells,
            summary,
            cache_stats: None,
        }
    }

    #[test]
    fn sweep_roundtrip_renders_byte_identically() {
        for shard in [None, Some(Shard::new(1, 2).unwrap())] {
            let m = sample_matrix(shard);
            let bytes = encode_sweep(&m).unwrap();
            let back = decode_sweep(&bytes).unwrap();
            assert_eq!(
                crate::sweep::sweep_to_json(&back).to_string_pretty(),
                crate::sweep::sweep_to_json(&m).to_string_pretty()
            );
            assert_eq!(
                decode_any_doc(&bytes).unwrap().to_string_pretty(),
                crate::sweep::sweep_to_json(&m).to_string_pretty()
            );
        }
    }

    #[test]
    fn sweep_decode_rejects_corruption_without_panicking() {
        let bytes = encode_sweep(&sample_matrix(None)).unwrap();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x2a;
            if (12..20).contains(&i) {
                assert!(decode_sweep(&bad).is_ok(), "sweeps decode across builds");
            } else {
                assert!(decode_sweep(&bad).is_err(), "mutation at byte {i}");
            }
        }
    }

    #[test]
    fn sweep_encode_validates_assignments() {
        let mut m = sample_matrix(None);
        m.cells[1].assignment[0].0 = "cost.other_field".to_string();
        assert!(encode_sweep(&m).is_err());
    }

    #[test]
    fn scratch_readers_are_zero_alloc_capable_and_consistent() {
        // Stage 4 columns match the map-materializing decoder.
        let mut s = Stage4Result::default();
        for i in 0..50u64 {
            s.first_use_ns.insert(OpInstance { sig: i % 7, occ: i }, i * 3);
        }
        s.exec_time_ns = 99;
        let bytes = encode_artifact(&Artifact::Stage4(Arc::new(s.clone()))).unwrap();
        let mut cols = Stage4Cols::new();
        cols.read(&bytes).unwrap();
        assert_eq!(cols.len(), 50);
        assert_eq!(cols.exec_time_ns, 99);
        for i in 0..cols.len() {
            let op = OpInstance { sig: cols.sig[i], occ: cols.occ[i] };
            assert_eq!(s.first_use_ns[&op], cols.first_use_ns[i]);
        }
        // Columns are sorted by (sig, occ) — the canonical encode order.
        for i in 1..cols.len() {
            assert!((cols.sig[i - 1], cols.occ[i - 1]) < (cols.sig[i], cols.occ[i]));
        }

        // Sweep columns match the struct decoder, reusing one scratch.
        let m = sample_matrix(None);
        let sweep_bytes = encode_sweep(&m).unwrap();
        let mut sc = SweepCellCols::new();
        sc.read(&sweep_bytes).unwrap();
        sc.read(&sweep_bytes).unwrap(); // reuse is idempotent
        assert_eq!(sc.len(), m.cells.len());
        assert_eq!(sc.axes, 2);
        for (i, cell) in m.cells.iter().enumerate() {
            assert_eq!(sc.index[i] as usize, cell.index);
            assert_eq!(sc.axis_values[i], cell.assignment[0].1);
            assert_eq!(sc.axis_values[sc.len() + i], cell.assignment[1].1);
            assert_eq!(sc.total_benefit_ns[i], cell.total_benefit_ns);
            assert_eq!(sc.benefit_pct[i], cell.benefit_pct);
            assert_eq!(sc.collection_overhead_factor[i], cell.collection_overhead_factor);
        }
    }
}
