//! JSON export of analysis results (paper §4: "results are sorted by
//! potential benefit and then exported in the JSON format, allowing other
//! tools the ability to access data collected by Diogenes").

use crate::analysis::Analysis;
use crate::grouping::{ProblemGroup, Sequence};
use crate::json::Json;
use crate::pipeline::FfmReport;

fn loc(site: Option<gpu_sim::SourceLoc>) -> Json {
    match site {
        Some(s) => Json::obj([("file", Json::Static(s.file)), ("line", Json::Int(s.line as i128))]),
        None => Json::Null,
    }
}

fn group_json(g: &ProblemGroup) -> Json {
    Json::obj([
        // Interned label, resolved at serialization time (Json::Sym).
        ("label", g.label.into()),
        ("benefit_ns", Json::Int(g.benefit_ns as i128)),
        ("members", g.nodes.len().into()),
        ("sync_issues", g.sync_issues.into()),
        ("transfer_issues", g.transfer_issues.into()),
    ])
}

fn sequence_json(s: &Sequence) -> Json {
    Json::obj([
        ("benefit_ns", Json::Int(s.benefit_ns as i128)),
        ("sync_issues", s.sync_issues().into()),
        ("transfer_issues", s.transfer_issues().into()),
        (
            "entries",
            Json::arr(s.entries.iter().map(|e| {
                Json::obj([
                    ("index", e.index.into()),
                    ("api", e.api.map(|a| Json::Static(a.name())).unwrap_or(Json::Null)),
                    ("site", loc(e.site)),
                    ("problem", Json::Static(e.problem.label())),
                ])
            })),
        ),
    ])
}

/// Serialize an analysis to the export document.
pub fn analysis_to_json(a: &Analysis) -> Json {
    Json::obj([
        ("baseline_exec_ns", Json::Int(a.baseline_exec_ns as i128)),
        ("total_benefit_ns", Json::Int(a.total_benefit_ns() as i128)),
        ("total_benefit_percent", Json::Float(a.percent(a.total_benefit_ns()))),
        (
            "problems",
            Json::arr(a.problems.iter().map(|p| {
                Json::obj([
                    ("api", p.api.map(|x| Json::Static(x.name())).unwrap_or(Json::Null)),
                    ("site", loc(p.site)),
                    ("problem", Json::Static(p.problem.label())),
                    ("benefit_ns", Json::Int(p.benefit_ns as i128)),
                    ("benefit_percent", Json::Float(a.percent(p.benefit_ns))),
                ])
            })),
        ),
        ("single_point_groups", Json::arr(a.single_point.iter().map(group_json))),
        ("api_folds", Json::arr(a.api_folds.iter().map(group_json))),
        ("sequences", Json::arr(a.sequences.iter().map(sequence_json))),
        (
            "savings_by_api",
            Json::Obj(
                a.by_api
                    .iter()
                    .map(|(api, ns)| (api.name().to_string(), Json::Int(*ns as i128)))
                    .collect(),
            ),
        ),
    ])
}

/// Serialize a full pipeline report.
pub fn report_to_json(r: &FfmReport) -> Json {
    Json::obj([
        ("app", Json::Static(r.app_name)),
        ("workload", r.workload.clone().into()),
        ("discovery", Json::obj([("sync_function", Json::Static(r.discovery.sync_fn.symbol()))])),
        (
            "stages",
            Json::arr(r.stages.iter().map(|s| {
                Json::obj([
                    ("name", Json::Static(s.name)),
                    ("exec_ns", Json::Int(s.exec_ns as i128)),
                    ("overhead_factor", Json::Float(s.overhead_factor)),
                ])
            })),
        ),
        ("collection_overhead_factor", Json::Float(r.collection_overhead_factor())),
        ("analysis", analysis_to_json(&r.analysis)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, AnalysisConfig};
    use crate::records::{Stage1Result, Stage2Result, Stage3Result, Stage4Result};

    #[test]
    fn empty_analysis_exports_valid_shape() {
        let a = analyze(
            &Stage1Result {
                exec_time_ns: 100,
                sync_apis: Default::default(),
                total_wait_ns: 0,
                sync_hits: 0,
            },
            &Stage2Result { exec_time_ns: 100, calls: vec![] },
            &Stage3Result::default(),
            &Stage4Result::default(),
            &AnalysisConfig::default(),
            1,
        );
        let j = analysis_to_json(&a).to_string_compact();
        assert!(j.contains("\"problems\":[]"));
        assert!(j.contains("\"baseline_exec_ns\":100"));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}
