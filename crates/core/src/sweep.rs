//! Configuration sweeps: replay the full FFM pipeline across a grid of
//! cost-model / driver / analysis configurations and tabulate the result.
//!
//! The paper's conclusions are statements about a *space* of
//! configurations (the 8×–20× overhead band, the Table 1 accuracy
//! claims), not a single point. A [`SweepSpec`] names the axes of that
//! space declaratively — each axis is a config field path
//! (`"cost.free_base_ns"`, `"driver.unified_memset_penalty"`, …) plus
//! the values to try — and [`run_sweep`] expands it into a fleet of
//! [`run_ffm`] jobs executed on the shared worker pool, so the fleet,
//! the per-run stage DAG, and sequence scoring all draw from one
//! bounded set of threads.
//!
//! Determinism contract: every cell is a complete isolated virtual-time
//! simulation, so the produced [`SweepMatrix`] — and its JSON rendering
//! — is bit-identical for any job count, including `jobs = 1`, which
//! runs the whole sweep on the caller's thread with no worker threads
//! at all.
//!
//! ## Field paths
//!
//! A path is `section.field`, with sections `cost` ([`CostModel`]),
//! `driver` ([`DriverConfig`]) and `analysis` ([`AnalysisConfig`]).
//! Values are plain `u64`; boolean fields take `0`/`1`. The full list
//! is in [`SWEEPABLE_FIELDS`].

use std::path::PathBuf;

use cuda_driver::{CudaResult, GpuApp};
use gpu_sim::Ns;

use crate::codec;
use crate::json::Json;
use crate::par::{effective_jobs, try_par_map};
use crate::pipeline::{run_ffm_with_store, FfmConfig, FfmReport};
use crate::store::{ArtifactStore, StoreStats};
use crate::telemetry;

/// One sweep dimension: a config field path and the values it takes.
#[derive(Debug, Clone)]
pub struct Axis {
    /// Field path, e.g. `"cost.free_base_ns"`.
    pub field: String,
    /// Values in sweep order. Booleans are `0`/`1`.
    pub values: Vec<u64>,
}

impl Axis {
    pub fn new(field: impl Into<String>, values: Vec<u64>) -> Self {
        Self { field: field.into(), values }
    }
}

/// How multiple axes combine into grid cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AxisLayout {
    /// Full cartesian product; the first axis varies slowest.
    Cartesian,
    /// Axes are zipped position-wise (all must have equal length).
    Paired,
}

/// Where sweep-level stage artifacts live (see [`crate::ArtifactStore`]).
///
/// Cells that share upstream configuration reuse each other's stage
/// outputs through the store; `Off` recomputes every stage of every
/// cell from scratch. The mode never affects the produced
/// [`SweepMatrix`] or its JSON — only how much work is repeated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheMode {
    /// No memoization: every cell runs its full pipeline.
    Off,
    /// Artifacts are shared in memory for the duration of the sweep.
    Memory,
    /// Memory sharing plus a persistent on-disk layer under the given
    /// directory, so a later sweep (or another shard of this one) can
    /// start warm.
    Disk(PathBuf),
}

/// One deterministic slice of a sweep grid, for distributing a sweep
/// across processes or machines: shard `k` of `n` (1-based `k`) keeps
/// exactly the cells whose global index `i` satisfies `i % n == k - 1`.
///
/// Round-robin assignment keeps each shard's workload representative of
/// the whole grid (contiguous blocks would give one shard all the
/// expensive corner of the space).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// 1-based shard number, `1 ..= n`.
    pub k: usize,
    /// Total shard count, `>= 1`.
    pub n: usize,
}

impl Shard {
    pub fn new(k: usize, n: usize) -> Result<Self, String> {
        if n == 0 {
            return Err("shard count n must be >= 1".to_string());
        }
        if k == 0 || k > n {
            return Err(format!("shard k must be in 1..={n}, got {k}"));
        }
        Ok(Self { k, n })
    }

    /// Does this shard own global cell index `i`?
    pub fn contains(&self, i: usize) -> bool {
        i % self.n == self.k - 1
    }
}

/// A declarative sweep: base configuration plus axes.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// The configuration every cell starts from; each cell overrides the
    /// axis fields. The base's `jobs` field is ignored — [`SweepSpec::jobs`]
    /// governs the whole sweep.
    pub base: FfmConfig,
    pub axes: Vec<Axis>,
    pub layout: AxisLayout,
    /// Worker budget for the whole sweep (fleet × stages × scoring);
    /// `0` = auto via `DIOGENES_JOBS` / core count, `1` = fully
    /// sequential on the caller's thread.
    pub jobs: usize,
    /// Stage-artifact memoization across cells.
    pub cache: CacheMode,
    /// Run only this slice of the grid (`None` = the whole grid).
    pub shard: Option<Shard>,
}

impl SweepSpec {
    pub fn new(base: FfmConfig) -> Self {
        Self {
            base,
            axes: Vec::new(),
            layout: AxisLayout::Cartesian,
            jobs: 0,
            cache: CacheMode::Memory,
            shard: None,
        }
    }

    /// Add an axis (builder style).
    pub fn axis(mut self, field: impl Into<String>, values: Vec<u64>) -> Self {
        self.axes.push(Axis::new(field, values));
        self
    }

    /// Zip axes position-wise instead of taking the cartesian product.
    pub fn paired(mut self) -> Self {
        self.layout = AxisLayout::Paired;
        self
    }

    /// Worker-count override (0 = auto).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Disable stage-artifact memoization entirely.
    pub fn no_cache(mut self) -> Self {
        self.cache = CacheMode::Off;
        self
    }

    /// Persist stage artifacts on disk under `dir` (and share them in
    /// memory during the sweep).
    pub fn disk_cache(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache = CacheMode::Disk(dir.into());
        self
    }

    /// Restrict the sweep to one round-robin slice of the grid.
    pub fn with_shard(mut self, shard: Shard) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Expand the spec into concrete per-cell configurations, in
    /// deterministic cell order. Errors on an unknown field path, a
    /// value out of range for its field, or mismatched axis lengths in
    /// [`AxisLayout::Paired`] mode.
    pub fn expand(&self) -> Result<Vec<SweepPoint>, String> {
        for axis in &self.axes {
            if axis.values.is_empty() {
                return Err(format!("axis {:?} has no values", axis.field));
            }
            // Probe the path once up front so a typo fails before any
            // simulation work starts.
            let mut probe = self.base.clone();
            set_field(&mut probe, &axis.field, axis.values[0])?;
        }
        let assignments: Vec<Vec<(String, u64)>> = match self.layout {
            AxisLayout::Cartesian => {
                let mut acc: Vec<Vec<(String, u64)>> = vec![Vec::new()];
                for axis in &self.axes {
                    let mut next = Vec::with_capacity(acc.len() * axis.values.len());
                    for prefix in &acc {
                        for &v in &axis.values {
                            let mut a = prefix.clone();
                            a.push((axis.field.clone(), v));
                            next.push(a);
                        }
                    }
                    acc = next;
                }
                if self.axes.is_empty() {
                    Vec::new()
                } else {
                    acc
                }
            }
            AxisLayout::Paired => {
                let Some(first) = self.axes.first() else { return Ok(Vec::new()) };
                let len = first.values.len();
                for axis in &self.axes {
                    if axis.values.len() != len {
                        return Err(format!(
                            "paired axes must have equal lengths: {:?} has {} values, {:?} has {}",
                            first.field,
                            len,
                            axis.field,
                            axis.values.len()
                        ));
                    }
                }
                (0..len)
                    .map(|i| self.axes.iter().map(|a| (a.field.clone(), a.values[i])).collect())
                    .collect()
            }
        };
        assignments
            .into_iter()
            .map(|assignment| {
                let mut cfg = self.base.clone();
                for (field, value) in &assignment {
                    set_field(&mut cfg, field, *value)?;
                }
                Ok(SweepPoint { assignment, cfg })
            })
            .collect()
    }
}

/// One expanded grid cell: the axis assignment and the resulting config.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    pub assignment: Vec<(String, u64)>,
    pub cfg: FfmConfig,
}

/// The measured outcome of one grid cell.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Global cell index in the full (unsharded) grid, in expansion
    /// order. Shard documents carry it so merging can reassemble the
    /// exact unsharded cell order.
    pub index: usize,
    /// `(field path, value)` per axis, in axis order.
    pub assignment: Vec<(String, u64)>,
    /// Stage 1 baseline execution time under this configuration.
    pub baseline_exec_ns: Ns,
    /// Total expected benefit across all problems.
    pub total_benefit_ns: Ns,
    /// Benefit as percent of the baseline.
    pub benefit_pct: f64,
    /// Number of problematic operations.
    pub problem_count: usize,
    pub sync_issues: usize,
    pub transfer_issues: usize,
    /// Contiguous problem sequences found.
    pub sequence_count: usize,
    /// Data-collection cost relative to one baseline run (§5.3).
    pub collection_overhead_factor: f64,
}

impl SweepCell {
    fn from_report(index: usize, assignment: Vec<(String, u64)>, r: &FfmReport) -> Self {
        let a = &r.analysis;
        Self {
            index,
            assignment,
            baseline_exec_ns: a.baseline_exec_ns,
            total_benefit_ns: a.total_benefit_ns(),
            benefit_pct: a.percent(a.total_benefit_ns()),
            problem_count: a.problems.len(),
            sync_issues: a.sync_issue_count(),
            transfer_issues: a.transfer_issue_count(),
            sequence_count: a.sequences.len(),
            collection_overhead_factor: r.collection_overhead_factor(),
        }
    }
}

/// Argmin/argmax rows over the matrix (cell indices; first occurrence
/// wins on ties, so the summary is deterministic).
#[derive(Debug, Clone, Default)]
pub struct SweepSummary {
    pub min_benefit: Option<usize>,
    pub max_benefit: Option<usize>,
    pub min_overhead: Option<usize>,
    pub max_overhead: Option<usize>,
}

/// The complete result of a sweep over one application (or of one shard
/// of it).
#[derive(Debug)]
pub struct SweepMatrix {
    pub app_name: String,
    pub workload: String,
    pub axes: Vec<Axis>,
    pub layout: AxisLayout,
    /// Size of the full unsharded grid. Equals `cells.len()` unless
    /// this matrix is a shard.
    pub total_cells: usize,
    /// `Some` when this matrix holds only one slice of the grid.
    pub shard: Option<Shard>,
    /// Cells in global-index order (a shard's subsequence of it).
    pub cells: Vec<SweepCell>,
    /// Argmin/argmax over `cells` — i.e. over the shard, when sharded.
    /// Values are positions in `cells`, which for an unsharded run
    /// coincide with global indices.
    pub summary: SweepSummary,
    /// Artifact-store hit/miss counters for this sweep, when a cache
    /// was active. Diagnostic only — never serialized into the sweep
    /// document (it varies with cache temperature and job count).
    pub cache_stats: Option<StoreStats>,
}

impl SweepMatrix {
    pub(crate) fn summarize(cells: &[SweepCell]) -> SweepSummary {
        let arg = |better: &dyn Fn(&SweepCell, &SweepCell) -> bool| -> Option<usize> {
            let mut best: Option<usize> = None;
            for (i, c) in cells.iter().enumerate() {
                match best {
                    None => best = Some(i),
                    Some(b) if better(c, &cells[b]) => best = Some(i),
                    _ => {}
                }
            }
            best
        };
        SweepSummary {
            min_benefit: arg(&|c, b| c.total_benefit_ns < b.total_benefit_ns),
            max_benefit: arg(&|c, b| c.total_benefit_ns > b.total_benefit_ns),
            min_overhead: arg(&|c, b| c.collection_overhead_factor < b.collection_overhead_factor),
            max_overhead: arg(&|c, b| c.collection_overhead_factor > b.collection_overhead_factor),
        }
    }
}

/// Run the fleet layer: one closure per member, up to `jobs` concurrent
/// (`0` = auto via `DIOGENES_JOBS` / core count), on the shared worker
/// pool. Results come back in member order; on failure the error of the
/// earliest member in input order is returned — identical semantics to
/// the sequential loop. The table/overhead regenerators and
/// [`run_sweep`] itself are all built on this.
pub fn run_fleet<T, U, E, F>(members: Vec<T>, jobs: usize, f: F) -> Result<Vec<U>, E>
where
    T: Send,
    U: Send,
    E: Send,
    F: Fn(T) -> Result<U, E> + Sync,
{
    try_par_map(members, effective_jobs(jobs), f)
}

/// Execute a sweep: expand the spec, run every cell's full FFM pipeline
/// on the shared pool, and tabulate the matrix.
///
/// Creates the artifact store named by [`SweepSpec::cache`] and
/// delegates to [`run_sweep_with_store`]. Spec errors (unknown field
/// path, bad value, mismatched paired axes, bad shard) are reported as
/// `Err(String)`; the first failing cell's [`cuda_driver::CudaError`]
/// is rendered into the same error string.
pub fn run_sweep(app: &dyn GpuApp, spec: &SweepSpec) -> Result<SweepMatrix, String> {
    match &spec.cache {
        CacheMode::Off => run_sweep_with_store(app, spec, None),
        CacheMode::Memory => {
            let store = ArtifactStore::in_memory();
            run_sweep_with_store(app, spec, Some(&store))
        }
        CacheMode::Disk(dir) => {
            let store = ArtifactStore::with_disk(dir.clone());
            run_sweep_with_store(app, spec, Some(&store))
        }
    }
}

/// [`run_sweep`] against a caller-provided artifact store (or none).
///
/// Exposed so benchmarks and tests can measure cold vs. warm behaviour
/// against one store instance and read its counters afterwards.
pub fn run_sweep_with_store(
    app: &dyn GpuApp,
    spec: &SweepSpec,
    store: Option<&ArtifactStore>,
) -> Result<SweepMatrix, String> {
    let _sweep_span = telemetry::span_detail("run_sweep", || app.name().to_string());
    if let Some(s) = spec.shard {
        // Re-validate: the struct is plain-old-data, so a hand-built
        // (not `Shard::new`) value could smuggle in k > n.
        Shard::new(s.k, s.n)?;
    }
    let points = spec.expand()?;
    let total_cells = points.len();
    let jobs = effective_jobs(spec.jobs);
    let indexed: Vec<(usize, SweepPoint)> = points
        .into_iter()
        .enumerate()
        .filter(|(i, _)| spec.shard.is_none_or(|s| s.contains(*i)))
        .collect();
    let cells = run_fleet(indexed, jobs, |(i, p): (usize, SweepPoint)| -> CudaResult<SweepCell> {
        let _cell_span = telemetry::span_detail("sweep.cell", || {
            let axes: Vec<String> = p.assignment.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("#{i} {}", axes.join(","))
        });
        // Each cell's pipeline inherits the sweep's resolved worker
        // budget; nested fan-out shares the same pool, and `jobs = 1`
        // keeps everything on this thread.
        let cfg = FfmConfig { jobs, ..p.cfg };
        let t0 = telemetry::collecting().then(std::time::Instant::now);
        let report = run_ffm_with_store(app, &cfg, store)?;
        if let Some(t0) = t0 {
            telemetry::record("sweep.cell.exec_ns", t0.elapsed().as_nanos() as u64);
        }
        telemetry::counter_add("sweep.cells_completed", 1);
        Ok(SweepCell::from_report(i, p.assignment, &report))
    })
    .map_err(|e| format!("sweep cell failed: {e}"))?;
    let summary = SweepMatrix::summarize(&cells);
    Ok(SweepMatrix {
        app_name: app.name().to_string(),
        workload: app.workload(),
        axes: spec.axes.clone(),
        layout: spec.layout,
        total_cells,
        shard: spec.shard,
        cells,
        summary,
        cache_stats: store.map(|s| s.stats()),
    })
}

/// Render a sweep matrix as JSON (deterministic field order; no
/// job-count or wall-clock data, so the bytes are identical across job
/// counts).
pub fn sweep_to_json(m: &SweepMatrix) -> Json {
    let axis_json = |a: &Axis| {
        Json::obj([
            ("field", Json::Str(a.field.clone())),
            ("values", Json::Arr(a.values.iter().map(|&v| Json::Int(v as i128)).collect())),
        ])
    };
    let cell_json = |c: &SweepCell| {
        Json::obj([
            ("cell", Json::Int(c.index as i128)),
            (
                "assignment",
                Json::Obj(
                    c.assignment.iter().map(|(k, v)| (k.clone(), Json::Int(*v as i128))).collect(),
                ),
            ),
            ("baseline_exec_ns", Json::Int(c.baseline_exec_ns as i128)),
            ("total_benefit_ns", Json::Int(c.total_benefit_ns as i128)),
            ("benefit_pct", Json::Float(c.benefit_pct)),
            ("problem_count", Json::Int(c.problem_count as i128)),
            ("sync_issues", Json::Int(c.sync_issues as i128)),
            ("transfer_issues", Json::Int(c.transfer_issues as i128)),
            ("sequence_count", Json::Int(c.sequence_count as i128)),
            ("collection_overhead_factor", Json::Float(c.collection_overhead_factor)),
        ])
    };
    let opt = |i: Option<usize>| i.map(|i| Json::Int(i as i128)).unwrap_or(Json::Null);
    let shard_json = match m.shard {
        None => Json::Null,
        Some(s) => Json::obj([("k", Json::Int(s.k as i128)), ("n", Json::Int(s.n as i128))]),
    };
    Json::obj([
        ("app", Json::Str(m.app_name.clone())),
        ("workload", Json::Str(m.workload.clone())),
        (
            "layout",
            Json::Str(
                match m.layout {
                    AxisLayout::Cartesian => "cartesian",
                    AxisLayout::Paired => "paired",
                }
                .to_string(),
            ),
        ),
        ("axes", Json::Arr(m.axes.iter().map(axis_json).collect())),
        ("total_cells", Json::Int(m.total_cells as i128)),
        ("shard", shard_json),
        ("cells", Json::Arr(m.cells.iter().map(cell_json).collect())),
        (
            "summary",
            Json::obj([
                ("min_benefit_cell", opt(m.summary.min_benefit)),
                ("max_benefit_cell", opt(m.summary.max_benefit)),
                ("min_overhead_cell", opt(m.summary.min_overhead)),
                ("max_overhead_cell", opt(m.summary.max_overhead)),
            ]),
        ),
    ])
}

/// Merge shard documents (parsed `SWEEP_*.shard-K-of-N.json` files)
/// back into the document an unsharded run would have produced —
/// byte-identically, once rendered with the same writer.
///
/// Validates that every document describes the same sweep (app,
/// workload, layout, axes, `total_cells`), that each is a shard
/// artifact with a consistent `n`, no duplicated `k`, and that the
/// union of cells covers every global index exactly once. The summary
/// is recomputed over the merged cells; because JSON numbers round-trip
/// exactly through [`Json`], the recomputed argmin/argmax matches what
/// the unsharded run computed from the in-memory floats.
pub fn merge_sweep_docs(docs: &[Json]) -> Result<Json, String> {
    let mut fold = SweepMergeFold::new();
    for d in docs {
        fold.add_doc(d)?;
    }
    fold.finish()
}

/// The header keys every shard must agree on, in validation order.
const MERGE_HEADER_KEYS: [&str; 5] = ["app", "workload", "layout", "axes", "total_cells"];

/// Incremental shard merge: feed shard documents one at a time —
/// parsed JSON via [`SweepMergeFold::add_doc`], binary sweep containers
/// via [`SweepMergeFold::add_ffb`] (which reads header and cells
/// straight out of the mapped/pooled file bytes through
/// [`codec::FfbView`], never materializing an owned document) — then
/// [`SweepMergeFold::finish`]. Produces the document an unsharded run
/// would have, byte-identically once rendered, regardless of how each
/// shard arrived. Peak memory is the merged cell set plus one shard's
/// columns, not every shard document at once.
pub struct SweepMergeFold {
    docs_seen: usize,
    /// Doc-0 values for [`MERGE_HEADER_KEYS`], in that order.
    header: Option<[Json; 5]>,
    total: usize,
    shard_n: Option<i128>,
    seen_k: Vec<i128>,
    cells: Vec<(usize, Json)>,
    /// Scratch reused across `add_ffb` calls.
    cols: codec::SweepCellCols,
    strings: codec::StrTable,
}

impl Default for SweepMergeFold {
    fn default() -> Self {
        SweepMergeFold::new()
    }
}

impl SweepMergeFold {
    pub fn new() -> SweepMergeFold {
        SweepMergeFold {
            docs_seen: 0,
            header: None,
            total: 0,
            shard_n: None,
            seen_k: Vec::new(),
            cells: Vec::new(),
            cols: codec::SweepCellCols::new(),
            strings: codec::StrTable::default(),
        }
    }

    /// Record doc 0's header or check a later doc's against it.
    fn take_header(&mut self, header: [Json; 5]) -> Result<(), String> {
        let i = self.docs_seen;
        if let Some(first) = &self.header {
            for ((key, mine), value) in MERGE_HEADER_KEYS.iter().zip(&header).zip(first) {
                if mine != value {
                    return Err(format!("shard document {i} disagrees with document 0 on {key:?}"));
                }
            }
        } else {
            let total = match &header[4] {
                Json::Int(t) if *t >= 0 => *t as usize,
                _ => return Err("total_cells is not a non-negative integer".to_string()),
            };
            self.total = total;
            self.cells.reserve(total);
            self.header = Some(header);
        }
        Ok(())
    }

    /// Validate this doc's shard tag against the set seen so far.
    fn take_shard(&mut self, shard: Option<(i128, i128)>) -> Result<(), String> {
        let i = self.docs_seen;
        let Some((k, n)) = shard else {
            return Err(format!(
                "document {i} is not a shard artifact (\"shard\" is null); \
                 merging already-complete sweeps is not meaningful"
            ));
        };
        match self.shard_n {
            None => self.shard_n = Some(n),
            Some(expect) if n != expect => {
                return Err(format!(
                    "document {i} is a shard of {n}, but earlier documents are shards of {expect}"
                ));
            }
            _ => {}
        }
        if self.seen_k.contains(&k) {
            return Err(format!("shard {k}/{n} appears more than once"));
        }
        self.seen_k.push(k);
        Ok(())
    }

    /// Fold in one parsed JSON shard document.
    pub fn add_doc(&mut self, d: &Json) -> Result<(), String> {
        let i = self.docs_seen;
        if let Some(first) = &self.header {
            for (key, value) in MERGE_HEADER_KEYS.iter().zip(first) {
                if d.get(key) != Some(value) {
                    return Err(format!("shard document {i} disagrees with document 0 on {key:?}"));
                }
            }
        } else {
            let mut header = Vec::with_capacity(MERGE_HEADER_KEYS.len());
            for key in MERGE_HEADER_KEYS {
                let Some(v) = d.get(key) else {
                    return Err(format!("shard document {i} is missing {key:?}"));
                };
                header.push(v.clone());
            }
            let header: [Json; 5] = header.try_into().expect("five header keys");
            self.take_header(header)?;
        }

        let shard = d.get("shard").ok_or(format!("shard document {i} is missing \"shard\""))?;
        if matches!(shard, Json::Null) {
            self.take_shard(None)?;
        } else {
            let k = shard.get("k").and_then(Json::as_i128);
            let n = shard.get("n").and_then(Json::as_i128);
            let (Some(k), Some(n)) = (k, n) else {
                return Err(format!("document {i} has a malformed \"shard\" object"));
            };
            self.take_shard(Some((k, n)))?;
        }

        let arr = d
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or(format!("document {i} has no \"cells\" array"))?;
        for cell in arr {
            let idx = cell
                .get("cell")
                .and_then(Json::as_i128)
                .filter(|&c| c >= 0)
                .ok_or(format!("document {i} has a cell without a \"cell\" index"))?;
            self.cells.push((idx as usize, cell.clone()));
        }
        self.docs_seen += 1;
        Ok(())
    }

    /// Fold in one binary shard ([`codec::KIND_SWEEP`]) straight from
    /// its file bytes. Header strings intern to symbols and cells decode
    /// into reused columns, so nothing of the source buffer is copied
    /// beyond the merged cell JSON itself.
    pub fn add_ffb(&mut self, bytes: &[u8]) -> Result<(), String> {
        let i = self.docs_seen;
        let view = codec::FfbView::parse(bytes)?;
        view.strings_into(&mut self.strings)?;
        let hdr = codec::read_sweep_header(&view, &self.strings)?;
        self.cols.read_view(&view)?;
        if self.cols.axes != hdr.axis_fields.len() {
            return Err(format!(
                "document {i} cells carry {} axes but the header declares {}",
                self.cols.axes,
                hdr.axis_fields.len()
            ));
        }

        // Header pieces in the exact shapes `sweep_to_json` emits, so
        // binary and JSON shards agree on equality and render.
        let axes_json = Json::Arr(
            hdr.axis_fields
                .iter()
                .zip(&hdr.axis_values)
                .map(|(f, values)| {
                    Json::obj([
                        ("field", Json::Sym(*f)),
                        (
                            "values",
                            Json::Arr(values.iter().map(|&v| Json::Int(v as i128)).collect()),
                        ),
                    ])
                })
                .collect(),
        );
        let layout = match hdr.layout {
            AxisLayout::Cartesian => "cartesian",
            AxisLayout::Paired => "paired",
        };
        self.take_header([
            Json::Sym(hdr.app),
            Json::Sym(hdr.workload),
            Json::Str(layout.to_string()),
            axes_json,
            Json::Int(hdr.total_cells as i128),
        ])?;
        self.take_shard(hdr.shard.map(|(k, n)| (k as i128, n as i128)))?;

        let n = self.cols.len();
        for ci in 0..n {
            let assignment = Json::Obj(
                hdr.axis_fields
                    .iter()
                    .enumerate()
                    .map(|(a, f)| {
                        (
                            f.resolve().to_string(),
                            Json::Int(self.cols.axis_values[a * n + ci] as i128),
                        )
                    })
                    .collect(),
            );
            let cell = Json::obj([
                ("cell", Json::Int(self.cols.index[ci] as i128)),
                ("assignment", assignment),
                ("baseline_exec_ns", Json::Int(self.cols.baseline_exec_ns[ci] as i128)),
                ("total_benefit_ns", Json::Int(self.cols.total_benefit_ns[ci] as i128)),
                ("benefit_pct", Json::Float(self.cols.benefit_pct[ci])),
                ("problem_count", Json::Int(self.cols.problem_count[ci] as i128)),
                ("sync_issues", Json::Int(self.cols.sync_issues[ci] as i128)),
                ("transfer_issues", Json::Int(self.cols.transfer_issues[ci] as i128)),
                ("sequence_count", Json::Int(self.cols.sequence_count[ci] as i128)),
                (
                    "collection_overhead_factor",
                    Json::Float(self.cols.collection_overhead_factor[ci]),
                ),
            ]);
            let idx = usize::try_from(self.cols.index[ci])
                .map_err(|_| format!("document {i} has a cell index overflow"))?;
            self.cells.push((idx, cell));
        }
        self.docs_seen += 1;
        Ok(())
    }

    /// Check coverage, recompute the summary over the full grid, and
    /// assemble the merged document. Shard-local summaries are
    /// discarded: their argmins only saw a slice.
    pub fn finish(self) -> Result<Json, String> {
        if self.docs_seen == 0 {
            return Err("no shard documents to merge".to_string());
        }
        let total = self.total;
        let mut cells = self.cells;
        cells.sort_by_key(|(i, _)| *i);
        if cells.len() != total {
            return Err(format!(
                "merged shards hold {} cells but the grid has {total}; \
                 a shard is missing or extra",
                cells.len()
            ));
        }
        for (pos, (idx, _)) in cells.iter().enumerate() {
            if *idx != pos {
                return Err(format!(
                    "cell coverage is broken at global index {pos} (found index {idx}); \
                     duplicate or missing shard cells"
                ));
            }
        }
        let cells: Vec<Json> = cells.into_iter().map(|(_, c)| c).collect();

        let int_of = |c: &Json, key: &str| -> Result<i128, String> {
            c.get(key).and_then(Json::as_i128).ok_or(format!("cell is missing integer {key:?}"))
        };
        let float_of = |c: &Json, key: &str| -> Result<f64, String> {
            c.get(key).and_then(Json::as_f64).ok_or(format!("cell is missing number {key:?}"))
        };
        let mut benefit: Vec<i128> = Vec::with_capacity(cells.len());
        let mut overhead: Vec<f64> = Vec::with_capacity(cells.len());
        for c in &cells {
            benefit.push(int_of(c, "total_benefit_ns")?);
            overhead.push(float_of(c, "collection_overhead_factor")?);
        }
        fn arg<T: PartialOrd + Copy>(xs: &[T], better: fn(T, T) -> bool) -> Json {
            let mut best: Option<usize> = None;
            for (i, &x) in xs.iter().enumerate() {
                match best {
                    None => best = Some(i),
                    Some(b) if better(x, xs[b]) => best = Some(i),
                    _ => {}
                }
            }
            best.map(|i| Json::Int(i as i128)).unwrap_or(Json::Null)
        }

        let [app, workload, layout, axes, _] = self.header.expect("docs_seen > 0 implies header");
        Ok(Json::obj([
            ("app", app),
            ("workload", workload),
            ("layout", layout),
            ("axes", axes),
            ("total_cells", Json::Int(total as i128)),
            ("shard", Json::Null),
            ("cells", Json::Arr(cells)),
            (
                "summary",
                Json::obj([
                    ("min_benefit_cell", arg(&benefit, |a, b| a < b)),
                    ("max_benefit_cell", arg(&benefit, |a, b| a > b)),
                    ("min_overhead_cell", arg(&overhead, |a, b| a < b)),
                    ("max_overhead_cell", arg(&overhead, |a, b| a > b)),
                ]),
            ),
        ]))
    }
}

/// Every sweepable field path, for `--list-fields` style help output.
pub const SWEEPABLE_FIELDS: &[&str] = &[
    "cost.driver_call_ns",
    "cost.kernel_launch_ns",
    "cost.transfer_setup_ns",
    "cost.pageable_bw_bytes_per_us",
    "cost.pinned_bw_bytes_per_us",
    "cost.dtod_bw_bytes_per_us",
    "cost.transfer_latency_ns",
    "cost.sync_entry_ns",
    "cost.alloc_base_ns",
    "cost.alloc_per_mib_ns",
    "cost.free_base_ns",
    "cost.memset_bw_bytes_per_us",
    "cost.memset_base_ns",
    "cost.query_call_ns",
    "cost.probe_overhead_ns",
    "cost.stackwalk_frame_ns",
    "cost.loadstore_overhead_ns",
    "cost.hash_bw_bytes_per_us",
    "cost.hash_base_ns",
    "cost.jitter_ppm",
    "driver.free_implicit_sync",
    "driver.memcpy_implicit_sync",
    "driver.async_dtoh_pageable_sync",
    "driver.memset_unified_sync",
    "driver.unified_memset_penalty",
    "driver.device_memory_bytes",
    "driver.private_api_discount",
    "analysis.misplaced_threshold_ns",
    "analysis.clamp_misplaced",
];

fn as_bool(field: &str, value: u64) -> Result<bool, String> {
    match value {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(format!("field {field:?} is boolean; use 0 or 1, got {value}")),
    }
}

/// Read one `section.field` value from a configuration — the exact
/// inverse of [`set_field`] (booleans read back as `0`/`1`). The stage
/// engine keys artifacts on the fields a stage declares, read through
/// this single accessor, so the keyed value and the swept value can
/// never diverge.
pub fn get_field(cfg: &FfmConfig, field: &str) -> Result<u64, String> {
    Ok(match field {
        "cost.driver_call_ns" => cfg.cost.driver_call_ns,
        "cost.kernel_launch_ns" => cfg.cost.kernel_launch_ns,
        "cost.transfer_setup_ns" => cfg.cost.transfer_setup_ns,
        "cost.pageable_bw_bytes_per_us" => cfg.cost.pageable_bw_bytes_per_us,
        "cost.pinned_bw_bytes_per_us" => cfg.cost.pinned_bw_bytes_per_us,
        "cost.dtod_bw_bytes_per_us" => cfg.cost.dtod_bw_bytes_per_us,
        "cost.transfer_latency_ns" => cfg.cost.transfer_latency_ns,
        "cost.sync_entry_ns" => cfg.cost.sync_entry_ns,
        "cost.alloc_base_ns" => cfg.cost.alloc_base_ns,
        "cost.alloc_per_mib_ns" => cfg.cost.alloc_per_mib_ns,
        "cost.free_base_ns" => cfg.cost.free_base_ns,
        "cost.memset_bw_bytes_per_us" => cfg.cost.memset_bw_bytes_per_us,
        "cost.memset_base_ns" => cfg.cost.memset_base_ns,
        "cost.query_call_ns" => cfg.cost.query_call_ns,
        "cost.probe_overhead_ns" => cfg.cost.probe_overhead_ns,
        "cost.stackwalk_frame_ns" => cfg.cost.stackwalk_frame_ns,
        "cost.loadstore_overhead_ns" => cfg.cost.loadstore_overhead_ns,
        "cost.hash_bw_bytes_per_us" => cfg.cost.hash_bw_bytes_per_us,
        "cost.hash_base_ns" => cfg.cost.hash_base_ns,
        "cost.jitter_ppm" => cfg.cost.jitter_ppm as u64,
        "driver.free_implicit_sync" => cfg.driver.free_implicit_sync as u64,
        "driver.memcpy_implicit_sync" => cfg.driver.memcpy_implicit_sync as u64,
        "driver.async_dtoh_pageable_sync" => cfg.driver.async_dtoh_pageable_sync as u64,
        "driver.memset_unified_sync" => cfg.driver.memset_unified_sync as u64,
        "driver.unified_memset_penalty" => cfg.driver.unified_memset_penalty,
        "driver.device_memory_bytes" => cfg.driver.device_memory_bytes,
        "driver.private_api_discount" => cfg.driver.private_api_discount as u64,
        "analysis.misplaced_threshold_ns" => cfg.analysis.classify.misplaced_threshold_ns,
        "analysis.clamp_misplaced" => cfg.analysis.benefit.clamp_misplaced as u64,
        _ => {
            return Err(format!(
                "unknown sweep field {field:?} (expected one of: {})",
                SWEEPABLE_FIELDS.join(", ")
            ))
        }
    })
}

/// Apply one `section.field = value` override to a configuration.
pub fn set_field(cfg: &mut FfmConfig, field: &str, value: u64) -> Result<(), String> {
    match field {
        "cost.driver_call_ns" => cfg.cost.driver_call_ns = value,
        "cost.kernel_launch_ns" => cfg.cost.kernel_launch_ns = value,
        "cost.transfer_setup_ns" => cfg.cost.transfer_setup_ns = value,
        "cost.pageable_bw_bytes_per_us" => cfg.cost.pageable_bw_bytes_per_us = value,
        "cost.pinned_bw_bytes_per_us" => cfg.cost.pinned_bw_bytes_per_us = value,
        "cost.dtod_bw_bytes_per_us" => cfg.cost.dtod_bw_bytes_per_us = value,
        "cost.transfer_latency_ns" => cfg.cost.transfer_latency_ns = value,
        "cost.sync_entry_ns" => cfg.cost.sync_entry_ns = value,
        "cost.alloc_base_ns" => cfg.cost.alloc_base_ns = value,
        "cost.alloc_per_mib_ns" => cfg.cost.alloc_per_mib_ns = value,
        "cost.free_base_ns" => cfg.cost.free_base_ns = value,
        "cost.memset_bw_bytes_per_us" => cfg.cost.memset_bw_bytes_per_us = value,
        "cost.memset_base_ns" => cfg.cost.memset_base_ns = value,
        "cost.query_call_ns" => cfg.cost.query_call_ns = value,
        "cost.probe_overhead_ns" => cfg.cost.probe_overhead_ns = value,
        "cost.stackwalk_frame_ns" => cfg.cost.stackwalk_frame_ns = value,
        "cost.loadstore_overhead_ns" => cfg.cost.loadstore_overhead_ns = value,
        "cost.hash_bw_bytes_per_us" => cfg.cost.hash_bw_bytes_per_us = value,
        "cost.hash_base_ns" => cfg.cost.hash_base_ns = value,
        "cost.jitter_ppm" => {
            cfg.cost.jitter_ppm = u32::try_from(value)
                .map_err(|_| format!("field \"cost.jitter_ppm\" is u32; got {value}"))?;
        }
        "driver.free_implicit_sync" => cfg.driver.free_implicit_sync = as_bool(field, value)?,
        "driver.memcpy_implicit_sync" => cfg.driver.memcpy_implicit_sync = as_bool(field, value)?,
        "driver.async_dtoh_pageable_sync" => {
            cfg.driver.async_dtoh_pageable_sync = as_bool(field, value)?;
        }
        "driver.memset_unified_sync" => cfg.driver.memset_unified_sync = as_bool(field, value)?,
        "driver.unified_memset_penalty" => cfg.driver.unified_memset_penalty = value,
        "driver.device_memory_bytes" => cfg.driver.device_memory_bytes = value,
        "driver.private_api_discount" => cfg.driver.private_api_discount = as_bool(field, value)?,
        "analysis.misplaced_threshold_ns" => cfg.analysis.classify.misplaced_threshold_ns = value,
        "analysis.clamp_misplaced" => cfg.analysis.benefit.clamp_misplaced = as_bool(field, value)?,
        _ => {
            return Err(format!(
                "unknown sweep field {field:?} (expected one of: {})",
                SWEEPABLE_FIELDS.join(", ")
            ))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_field_is_settable() {
        for field in SWEEPABLE_FIELDS {
            let mut cfg = FfmConfig::default();
            set_field(&mut cfg, field, 1).unwrap_or_else(|e| panic!("{field}: {e}"));
        }
    }

    #[test]
    fn get_field_is_the_exact_inverse_of_set_field() {
        for field in SWEEPABLE_FIELDS {
            let mut cfg = FfmConfig::default();
            set_field(&mut cfg, field, 1).unwrap_or_else(|e| panic!("{field}: {e}"));
            assert_eq!(get_field(&cfg, field).unwrap(), 1, "{field} should read back 1");
            set_field(&mut cfg, field, 0).unwrap_or_else(|e| panic!("{field}: {e}"));
            assert_eq!(get_field(&cfg, field).unwrap(), 0, "{field} should read back 0");
        }
        assert!(get_field(&FfmConfig::default(), "cost.nope").is_err());
    }

    #[test]
    fn unknown_field_and_bad_bool_are_rejected() {
        let mut cfg = FfmConfig::default();
        assert!(set_field(&mut cfg, "cost.nope", 1).is_err());
        assert!(set_field(&mut cfg, "banana", 1).is_err());
        assert!(set_field(&mut cfg, "driver.free_implicit_sync", 2).is_err());
        assert!(set_field(&mut cfg, "cost.jitter_ppm", u64::MAX).is_err());
    }

    #[test]
    fn cartesian_expansion_order_is_row_major() {
        let spec = SweepSpec::new(FfmConfig::default())
            .axis("cost.free_base_ns", vec![1, 2])
            .axis("driver.unified_memset_penalty", vec![10, 20, 30]);
        let points = spec.expand().unwrap();
        assert_eq!(points.len(), 6);
        let got: Vec<(u64, u64)> =
            points.iter().map(|p| (p.assignment[0].1, p.assignment[1].1)).collect();
        assert_eq!(got, vec![(1, 10), (1, 20), (1, 30), (2, 10), (2, 20), (2, 30)]);
        assert_eq!(points[3].cfg.cost.free_base_ns, 2);
        assert_eq!(points[3].cfg.driver.unified_memset_penalty, 10);
    }

    #[test]
    fn paired_expansion_zips_and_checks_lengths() {
        let spec = SweepSpec::new(FfmConfig::default())
            .axis("cost.free_base_ns", vec![1, 2])
            .axis("driver.unified_memset_penalty", vec![10, 20])
            .paired();
        let points = spec.expand().unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[1].cfg.cost.free_base_ns, 2);
        assert_eq!(points[1].cfg.driver.unified_memset_penalty, 20);

        let bad = SweepSpec::new(FfmConfig::default())
            .axis("cost.free_base_ns", vec![1, 2])
            .axis("driver.unified_memset_penalty", vec![10])
            .paired();
        assert!(bad.expand().is_err());
    }

    #[test]
    fn empty_axis_and_typo_fail_before_any_run() {
        assert!(SweepSpec::new(FfmConfig::default())
            .axis("cost.free_base_ns", vec![])
            .expand()
            .is_err());
        assert!(SweepSpec::new(FfmConfig::default())
            .axis("cost.free_base_nss", vec![1])
            .expand()
            .is_err());
    }

    #[test]
    fn summary_picks_first_extremes_deterministically() {
        let mk = |benefit: Ns, ovh: f64| SweepCell {
            index: 0,
            assignment: vec![],
            baseline_exec_ns: 100,
            total_benefit_ns: benefit,
            benefit_pct: 0.0,
            problem_count: 0,
            sync_issues: 0,
            transfer_issues: 0,
            sequence_count: 0,
            collection_overhead_factor: ovh,
        };
        let cells = vec![mk(5, 2.0), mk(9, 1.0), mk(5, 2.0), mk(1, 3.0)];
        let s = SweepMatrix::summarize(&cells);
        assert_eq!(s.min_benefit, Some(3));
        assert_eq!(s.max_benefit, Some(1));
        assert_eq!(s.min_overhead, Some(1));
        assert_eq!(s.max_overhead, Some(3));
        assert_eq!(SweepMatrix::summarize(&[]).max_benefit, None);
    }

    #[test]
    fn shard_validation_and_round_robin_slicing() {
        assert!(Shard::new(0, 2).is_err());
        assert!(Shard::new(3, 2).is_err());
        assert!(Shard::new(1, 0).is_err());
        let total = 7;
        for n in 1..=4usize {
            let mut covered = vec![0usize; total];
            for k in 1..=n {
                let s = Shard::new(k, n).unwrap();
                for (i, slot) in covered.iter_mut().enumerate() {
                    if s.contains(i) {
                        *slot += 1;
                    }
                }
            }
            assert_eq!(covered, vec![1; total], "shards of {n} must partition the grid");
        }
        let s = Shard::new(2, 3).unwrap();
        let mine: Vec<usize> = (0..10).filter(|&i| s.contains(i)).collect();
        assert_eq!(mine, vec![1, 4, 7]);
    }

    /// A synthetic shard document with the given shard tag and cells.
    fn shard_doc(shard: Json, indices: &[usize]) -> Json {
        let cell = |i: usize| {
            Json::obj([
                ("cell", Json::Int(i as i128)),
                ("total_benefit_ns", Json::Int(100 - i as i128)),
                ("collection_overhead_factor", Json::Float(1.0 + i as f64)),
            ])
        };
        Json::obj([
            ("app", Json::Str("demo".into())),
            ("workload", Json::Str("w".into())),
            ("layout", Json::Str("cartesian".into())),
            ("axes", Json::Arr(vec![])),
            ("total_cells", Json::Int(4)),
            ("shard", shard),
            ("cells", Json::Arr(indices.iter().map(|&i| cell(i)).collect())),
            ("summary", Json::Null),
        ])
    }

    fn shard_tag(k: usize, n: usize) -> Json {
        Json::obj([("k", Json::Int(k as i128)), ("n", Json::Int(n as i128))])
    }

    #[test]
    fn merge_reassembles_cells_and_recomputes_summary() {
        let a = shard_doc(shard_tag(1, 2), &[0, 2]);
        let b = shard_doc(shard_tag(2, 2), &[1, 3]);
        // Order of documents must not matter.
        for docs in [[a.clone(), b.clone()], [b, a]] {
            let merged = merge_sweep_docs(&docs).unwrap();
            assert!(matches!(merged.get("shard"), Some(Json::Null)));
            let cells = merged.get("cells").and_then(Json::as_arr).unwrap();
            let order: Vec<i128> =
                cells.iter().map(|c| c.get("cell").and_then(Json::as_i128).unwrap()).collect();
            assert_eq!(order, vec![0, 1, 2, 3]);
            let summary = merged.get("summary").unwrap();
            // benefit = 100 - i (max at 0); overhead = 1 + i (max at 3).
            assert_eq!(summary.get("max_benefit_cell").and_then(Json::as_i128), Some(0));
            assert_eq!(summary.get("min_benefit_cell").and_then(Json::as_i128), Some(3));
            assert_eq!(summary.get("min_overhead_cell").and_then(Json::as_i128), Some(0));
            assert_eq!(summary.get("max_overhead_cell").and_then(Json::as_i128), Some(3));
        }
    }

    #[test]
    fn merge_rejects_malformed_shard_sets() {
        let a = shard_doc(shard_tag(1, 2), &[0, 2]);
        let b = shard_doc(shard_tag(2, 2), &[1, 3]);
        // Missing shard.
        assert!(merge_sweep_docs(std::slice::from_ref(&a)).unwrap_err().contains("grid has 4"));
        // Duplicate k.
        assert!(merge_sweep_docs(&[a.clone(), a.clone()]).unwrap_err().contains("more than once"));
        // Mismatched n.
        let c = shard_doc(shard_tag(1, 3), &[0, 3]);
        assert!(merge_sweep_docs(&[c, b]).unwrap_err().contains("shards of"));
        // Unsharded doc in the mix.
        let full = shard_doc(Json::Null, &[0, 1, 2, 3]);
        assert!(merge_sweep_docs(&[full]).unwrap_err().contains("not a shard artifact"));
        // Header disagreement.
        let mut renamed = shard_doc(shard_tag(2, 2), &[1, 3]);
        if let Json::Obj(fields) = &mut renamed {
            fields[0].1 = Json::Str("other".into());
        }
        assert!(merge_sweep_docs(&[a.clone(), renamed]).unwrap_err().contains("disagrees"));
        // Overlapping cells (1 appears twice, 3 missing).
        let overlap = shard_doc(shard_tag(2, 2), &[1, 1]);
        assert!(merge_sweep_docs(&[a, overlap]).unwrap_err().contains("coverage"));
        assert!(merge_sweep_docs(&[]).is_err());
    }

    #[test]
    fn ffb_and_json_shards_merge_identically() {
        let mk = |k: usize, indices: &[usize]| -> SweepMatrix {
            let cells: Vec<SweepCell> = indices
                .iter()
                .map(|&i| SweepCell {
                    index: i,
                    assignment: vec![("cost.driver_call_ns".to_string(), 100 + i as u64)],
                    baseline_exec_ns: 1_000 + i as u64,
                    total_benefit_ns: 100 - i as u64,
                    benefit_pct: 1.5 * i as f64,
                    problem_count: i,
                    sync_issues: i % 2,
                    transfer_issues: i / 2,
                    sequence_count: 1,
                    collection_overhead_factor: 1.0 + i as f64,
                })
                .collect();
            let summary = SweepMatrix::summarize(&cells);
            SweepMatrix {
                app_name: "demo".into(),
                workload: "w".into(),
                axes: vec![Axis::new("cost.driver_call_ns", vec![100, 101, 102, 103])],
                layout: AxisLayout::Cartesian,
                total_cells: 4,
                shard: Some(Shard::new(k, 2).unwrap()),
                cells,
                summary,
                cache_stats: None,
            }
        };
        let a = mk(1, &[0, 2]);
        let b = mk(2, &[1, 3]);
        let expect = merge_sweep_docs(&[sweep_to_json(&a), sweep_to_json(&b)]).unwrap();

        // Binary-only fold: header and cells come straight off the
        // container bytes, yet the merged document is identical.
        let fa = codec::encode_sweep(&a).unwrap();
        let fb = codec::encode_sweep(&b).unwrap();
        let mut fold = SweepMergeFold::new();
        fold.add_ffb(&fa).unwrap();
        fold.add_ffb(&fb).unwrap();
        assert_eq!(fold.finish().unwrap(), expect);

        // Mixed binary + JSON shards, either order, render-identically.
        let mut fold = SweepMergeFold::new();
        fold.add_doc(&sweep_to_json(&b)).unwrap();
        fold.add_ffb(&fa).unwrap();
        assert_eq!(fold.finish().unwrap(), expect);
        let mut fold = SweepMergeFold::new();
        fold.add_ffb(&fa).unwrap();
        fold.add_doc(&sweep_to_json(&b)).unwrap();
        let mut r1 = Vec::new();
        fold.finish().unwrap().write_pretty(&mut r1).unwrap();
        let mut r2 = Vec::new();
        expect.write_pretty(&mut r2).unwrap();
        assert_eq!(r1, r2);

        // A complete (unsharded) binary sweep is rejected like its JSON
        // counterpart.
        let mut full = mk(1, &[0, 1, 2, 3]);
        full.shard = None;
        full.summary = SweepMatrix::summarize(&full.cells);
        let ffull = codec::encode_sweep(&full).unwrap();
        let mut fold = SweepMergeFold::new();
        assert!(fold.add_ffb(&ffull).unwrap_err().contains("not a shard artifact"));
    }

    #[test]
    fn spec_builders_set_cache_and_shard() {
        let spec = SweepSpec::new(FfmConfig::default());
        assert_eq!(spec.cache, CacheMode::Memory);
        assert!(spec.shard.is_none());
        let spec = spec.no_cache().with_shard(Shard::new(1, 2).unwrap());
        assert_eq!(spec.cache, CacheMode::Off);
        assert_eq!(spec.shard, Some(Shard { k: 1, n: 2 }));
        let spec = spec.disk_cache("/tmp/x");
        assert_eq!(spec.cache, CacheMode::Disk(PathBuf::from("/tmp/x")));
    }
}
