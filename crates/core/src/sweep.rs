//! Configuration sweeps: replay the full FFM pipeline across a grid of
//! cost-model / driver / analysis configurations and tabulate the result.
//!
//! The paper's conclusions are statements about a *space* of
//! configurations (the 8×–20× overhead band, the Table 1 accuracy
//! claims), not a single point. A [`SweepSpec`] names the axes of that
//! space declaratively — each axis is a config field path
//! (`"cost.free_base_ns"`, `"driver.unified_memset_penalty"`, …) plus
//! the values to try — and [`run_sweep`] expands it into a fleet of
//! [`run_ffm`] jobs executed on the shared worker pool, so the fleet,
//! the per-run stage DAG, and sequence scoring all draw from one
//! bounded set of threads.
//!
//! Determinism contract: every cell is a complete isolated virtual-time
//! simulation, so the produced [`SweepMatrix`] — and its JSON rendering
//! — is bit-identical for any job count, including `jobs = 1`, which
//! runs the whole sweep on the caller's thread with no worker threads
//! at all.
//!
//! ## Field paths
//!
//! A path is `section.field`, with sections `cost` ([`CostModel`]),
//! `driver` ([`DriverConfig`]) and `analysis` ([`AnalysisConfig`]).
//! Values are plain `u64`; boolean fields take `0`/`1`. The full list
//! is in [`SWEEPABLE_FIELDS`].

use cuda_driver::{CudaResult, GpuApp};
use gpu_sim::Ns;

use crate::json::Json;
use crate::par::{effective_jobs, try_par_map};
use crate::pipeline::{run_ffm, FfmConfig, FfmReport};
use crate::telemetry;

/// One sweep dimension: a config field path and the values it takes.
#[derive(Debug, Clone)]
pub struct Axis {
    /// Field path, e.g. `"cost.free_base_ns"`.
    pub field: String,
    /// Values in sweep order. Booleans are `0`/`1`.
    pub values: Vec<u64>,
}

impl Axis {
    pub fn new(field: impl Into<String>, values: Vec<u64>) -> Self {
        Self { field: field.into(), values }
    }
}

/// How multiple axes combine into grid cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AxisLayout {
    /// Full cartesian product; the first axis varies slowest.
    Cartesian,
    /// Axes are zipped position-wise (all must have equal length).
    Paired,
}

/// A declarative sweep: base configuration plus axes.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// The configuration every cell starts from; each cell overrides the
    /// axis fields. The base's `jobs` field is ignored — [`SweepSpec::jobs`]
    /// governs the whole sweep.
    pub base: FfmConfig,
    pub axes: Vec<Axis>,
    pub layout: AxisLayout,
    /// Worker budget for the whole sweep (fleet × stages × scoring);
    /// `0` = auto via `DIOGENES_JOBS` / core count, `1` = fully
    /// sequential on the caller's thread.
    pub jobs: usize,
}

impl SweepSpec {
    pub fn new(base: FfmConfig) -> Self {
        Self { base, axes: Vec::new(), layout: AxisLayout::Cartesian, jobs: 0 }
    }

    /// Add an axis (builder style).
    pub fn axis(mut self, field: impl Into<String>, values: Vec<u64>) -> Self {
        self.axes.push(Axis::new(field, values));
        self
    }

    /// Zip axes position-wise instead of taking the cartesian product.
    pub fn paired(mut self) -> Self {
        self.layout = AxisLayout::Paired;
        self
    }

    /// Worker-count override (0 = auto).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Expand the spec into concrete per-cell configurations, in
    /// deterministic cell order. Errors on an unknown field path, a
    /// value out of range for its field, or mismatched axis lengths in
    /// [`AxisLayout::Paired`] mode.
    pub fn expand(&self) -> Result<Vec<SweepPoint>, String> {
        for axis in &self.axes {
            if axis.values.is_empty() {
                return Err(format!("axis {:?} has no values", axis.field));
            }
            // Probe the path once up front so a typo fails before any
            // simulation work starts.
            let mut probe = self.base.clone();
            set_field(&mut probe, &axis.field, axis.values[0])?;
        }
        let assignments: Vec<Vec<(String, u64)>> = match self.layout {
            AxisLayout::Cartesian => {
                let mut acc: Vec<Vec<(String, u64)>> = vec![Vec::new()];
                for axis in &self.axes {
                    let mut next = Vec::with_capacity(acc.len() * axis.values.len());
                    for prefix in &acc {
                        for &v in &axis.values {
                            let mut a = prefix.clone();
                            a.push((axis.field.clone(), v));
                            next.push(a);
                        }
                    }
                    acc = next;
                }
                if self.axes.is_empty() {
                    Vec::new()
                } else {
                    acc
                }
            }
            AxisLayout::Paired => {
                let Some(first) = self.axes.first() else { return Ok(Vec::new()) };
                let len = first.values.len();
                for axis in &self.axes {
                    if axis.values.len() != len {
                        return Err(format!(
                            "paired axes must have equal lengths: {:?} has {} values, {:?} has {}",
                            first.field,
                            len,
                            axis.field,
                            axis.values.len()
                        ));
                    }
                }
                (0..len)
                    .map(|i| self.axes.iter().map(|a| (a.field.clone(), a.values[i])).collect())
                    .collect()
            }
        };
        assignments
            .into_iter()
            .map(|assignment| {
                let mut cfg = self.base.clone();
                for (field, value) in &assignment {
                    set_field(&mut cfg, field, *value)?;
                }
                Ok(SweepPoint { assignment, cfg })
            })
            .collect()
    }
}

/// One expanded grid cell: the axis assignment and the resulting config.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    pub assignment: Vec<(String, u64)>,
    pub cfg: FfmConfig,
}

/// The measured outcome of one grid cell.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// `(field path, value)` per axis, in axis order.
    pub assignment: Vec<(String, u64)>,
    /// Stage 1 baseline execution time under this configuration.
    pub baseline_exec_ns: Ns,
    /// Total expected benefit across all problems.
    pub total_benefit_ns: Ns,
    /// Benefit as percent of the baseline.
    pub benefit_pct: f64,
    /// Number of problematic operations.
    pub problem_count: usize,
    pub sync_issues: usize,
    pub transfer_issues: usize,
    /// Contiguous problem sequences found.
    pub sequence_count: usize,
    /// Data-collection cost relative to one baseline run (§5.3).
    pub collection_overhead_factor: f64,
}

impl SweepCell {
    fn from_report(assignment: Vec<(String, u64)>, r: &FfmReport) -> Self {
        let a = &r.analysis;
        Self {
            assignment,
            baseline_exec_ns: a.baseline_exec_ns,
            total_benefit_ns: a.total_benefit_ns(),
            benefit_pct: a.percent(a.total_benefit_ns()),
            problem_count: a.problems.len(),
            sync_issues: a.sync_issue_count(),
            transfer_issues: a.transfer_issue_count(),
            sequence_count: a.sequences.len(),
            collection_overhead_factor: r.collection_overhead_factor(),
        }
    }
}

/// Argmin/argmax rows over the matrix (cell indices; first occurrence
/// wins on ties, so the summary is deterministic).
#[derive(Debug, Clone, Default)]
pub struct SweepSummary {
    pub min_benefit: Option<usize>,
    pub max_benefit: Option<usize>,
    pub min_overhead: Option<usize>,
    pub max_overhead: Option<usize>,
}

/// The complete result of a sweep over one application.
#[derive(Debug)]
pub struct SweepMatrix {
    pub app_name: &'static str,
    pub workload: String,
    pub axes: Vec<Axis>,
    pub layout: AxisLayout,
    pub cells: Vec<SweepCell>,
    pub summary: SweepSummary,
}

impl SweepMatrix {
    fn summarize(cells: &[SweepCell]) -> SweepSummary {
        let arg = |better: &dyn Fn(&SweepCell, &SweepCell) -> bool| -> Option<usize> {
            let mut best: Option<usize> = None;
            for (i, c) in cells.iter().enumerate() {
                match best {
                    None => best = Some(i),
                    Some(b) if better(c, &cells[b]) => best = Some(i),
                    _ => {}
                }
            }
            best
        };
        SweepSummary {
            min_benefit: arg(&|c, b| c.total_benefit_ns < b.total_benefit_ns),
            max_benefit: arg(&|c, b| c.total_benefit_ns > b.total_benefit_ns),
            min_overhead: arg(&|c, b| c.collection_overhead_factor < b.collection_overhead_factor),
            max_overhead: arg(&|c, b| c.collection_overhead_factor > b.collection_overhead_factor),
        }
    }
}

/// Run the fleet layer: one closure per member, up to `jobs` concurrent
/// (`0` = auto via `DIOGENES_JOBS` / core count), on the shared worker
/// pool. Results come back in member order; on failure the error of the
/// earliest member in input order is returned — identical semantics to
/// the sequential loop. The table/overhead regenerators and
/// [`run_sweep`] itself are all built on this.
pub fn run_fleet<T, U, E, F>(members: Vec<T>, jobs: usize, f: F) -> Result<Vec<U>, E>
where
    T: Send,
    U: Send,
    E: Send,
    F: Fn(T) -> Result<U, E> + Sync,
{
    try_par_map(members, effective_jobs(jobs), f)
}

/// Execute a sweep: expand the spec, run every cell's full FFM pipeline
/// on the shared pool, and tabulate the matrix.
///
/// Spec errors (unknown field path, bad value, mismatched paired axes)
/// are reported as `Err(String)`; the first failing cell's
/// [`cuda_driver::CudaError`] is rendered into the same error string.
pub fn run_sweep(app: &dyn GpuApp, spec: &SweepSpec) -> Result<SweepMatrix, String> {
    let _sweep_span = telemetry::span_detail("run_sweep", || app.name().to_string());
    let points = spec.expand()?;
    let jobs = effective_jobs(spec.jobs);
    let indexed: Vec<(usize, SweepPoint)> = points.into_iter().enumerate().collect();
    let cells = run_fleet(indexed, jobs, |(i, p): (usize, SweepPoint)| -> CudaResult<SweepCell> {
        let _cell_span = telemetry::span_detail("sweep.cell", || {
            let axes: Vec<String> = p.assignment.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("#{i} {}", axes.join(","))
        });
        // Each cell's pipeline inherits the sweep's resolved worker
        // budget; nested fan-out shares the same pool, and `jobs = 1`
        // keeps everything on this thread.
        let cfg = FfmConfig { jobs, ..p.cfg };
        let report = run_ffm(app, &cfg)?;
        telemetry::counter_add("sweep.cells_completed", 1);
        Ok(SweepCell::from_report(p.assignment, &report))
    })
    .map_err(|e| format!("sweep cell failed: {e}"))?;
    let summary = SweepMatrix::summarize(&cells);
    Ok(SweepMatrix {
        app_name: app.name(),
        workload: app.workload(),
        axes: spec.axes.clone(),
        layout: spec.layout,
        cells,
        summary,
    })
}

/// Render a sweep matrix as JSON (deterministic field order; no
/// job-count or wall-clock data, so the bytes are identical across job
/// counts).
pub fn sweep_to_json(m: &SweepMatrix) -> Json {
    let axis_json = |a: &Axis| {
        Json::obj([
            ("field", Json::Str(a.field.clone())),
            ("values", Json::Arr(a.values.iter().map(|&v| Json::Int(v as i128)).collect())),
        ])
    };
    let cell_json = |c: &SweepCell| {
        Json::obj([
            (
                "assignment",
                Json::Obj(
                    c.assignment.iter().map(|(k, v)| (k.clone(), Json::Int(*v as i128))).collect(),
                ),
            ),
            ("baseline_exec_ns", Json::Int(c.baseline_exec_ns as i128)),
            ("total_benefit_ns", Json::Int(c.total_benefit_ns as i128)),
            ("benefit_pct", Json::Float(c.benefit_pct)),
            ("problem_count", Json::Int(c.problem_count as i128)),
            ("sync_issues", Json::Int(c.sync_issues as i128)),
            ("transfer_issues", Json::Int(c.transfer_issues as i128)),
            ("sequence_count", Json::Int(c.sequence_count as i128)),
            ("collection_overhead_factor", Json::Float(c.collection_overhead_factor)),
        ])
    };
    let opt = |i: Option<usize>| i.map(|i| Json::Int(i as i128)).unwrap_or(Json::Null);
    Json::obj([
        ("app", Json::Str(m.app_name.to_string())),
        ("workload", Json::Str(m.workload.clone())),
        (
            "layout",
            Json::Str(
                match m.layout {
                    AxisLayout::Cartesian => "cartesian",
                    AxisLayout::Paired => "paired",
                }
                .to_string(),
            ),
        ),
        ("axes", Json::Arr(m.axes.iter().map(axis_json).collect())),
        ("cells", Json::Arr(m.cells.iter().map(cell_json).collect())),
        (
            "summary",
            Json::obj([
                ("min_benefit_cell", opt(m.summary.min_benefit)),
                ("max_benefit_cell", opt(m.summary.max_benefit)),
                ("min_overhead_cell", opt(m.summary.min_overhead)),
                ("max_overhead_cell", opt(m.summary.max_overhead)),
            ]),
        ),
    ])
}

/// Every sweepable field path, for `--list-fields` style help output.
pub const SWEEPABLE_FIELDS: &[&str] = &[
    "cost.driver_call_ns",
    "cost.kernel_launch_ns",
    "cost.transfer_setup_ns",
    "cost.pageable_bw_bytes_per_us",
    "cost.pinned_bw_bytes_per_us",
    "cost.dtod_bw_bytes_per_us",
    "cost.transfer_latency_ns",
    "cost.sync_entry_ns",
    "cost.alloc_base_ns",
    "cost.alloc_per_mib_ns",
    "cost.free_base_ns",
    "cost.memset_bw_bytes_per_us",
    "cost.memset_base_ns",
    "cost.query_call_ns",
    "cost.probe_overhead_ns",
    "cost.stackwalk_frame_ns",
    "cost.loadstore_overhead_ns",
    "cost.hash_bw_bytes_per_us",
    "cost.hash_base_ns",
    "cost.jitter_ppm",
    "driver.free_implicit_sync",
    "driver.memcpy_implicit_sync",
    "driver.async_dtoh_pageable_sync",
    "driver.memset_unified_sync",
    "driver.unified_memset_penalty",
    "driver.device_memory_bytes",
    "driver.private_api_discount",
    "analysis.misplaced_threshold_ns",
    "analysis.clamp_misplaced",
];

fn as_bool(field: &str, value: u64) -> Result<bool, String> {
    match value {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(format!("field {field:?} is boolean; use 0 or 1, got {value}")),
    }
}

/// Apply one `section.field = value` override to a configuration.
pub fn set_field(cfg: &mut FfmConfig, field: &str, value: u64) -> Result<(), String> {
    match field {
        "cost.driver_call_ns" => cfg.cost.driver_call_ns = value,
        "cost.kernel_launch_ns" => cfg.cost.kernel_launch_ns = value,
        "cost.transfer_setup_ns" => cfg.cost.transfer_setup_ns = value,
        "cost.pageable_bw_bytes_per_us" => cfg.cost.pageable_bw_bytes_per_us = value,
        "cost.pinned_bw_bytes_per_us" => cfg.cost.pinned_bw_bytes_per_us = value,
        "cost.dtod_bw_bytes_per_us" => cfg.cost.dtod_bw_bytes_per_us = value,
        "cost.transfer_latency_ns" => cfg.cost.transfer_latency_ns = value,
        "cost.sync_entry_ns" => cfg.cost.sync_entry_ns = value,
        "cost.alloc_base_ns" => cfg.cost.alloc_base_ns = value,
        "cost.alloc_per_mib_ns" => cfg.cost.alloc_per_mib_ns = value,
        "cost.free_base_ns" => cfg.cost.free_base_ns = value,
        "cost.memset_bw_bytes_per_us" => cfg.cost.memset_bw_bytes_per_us = value,
        "cost.memset_base_ns" => cfg.cost.memset_base_ns = value,
        "cost.query_call_ns" => cfg.cost.query_call_ns = value,
        "cost.probe_overhead_ns" => cfg.cost.probe_overhead_ns = value,
        "cost.stackwalk_frame_ns" => cfg.cost.stackwalk_frame_ns = value,
        "cost.loadstore_overhead_ns" => cfg.cost.loadstore_overhead_ns = value,
        "cost.hash_bw_bytes_per_us" => cfg.cost.hash_bw_bytes_per_us = value,
        "cost.hash_base_ns" => cfg.cost.hash_base_ns = value,
        "cost.jitter_ppm" => {
            cfg.cost.jitter_ppm = u32::try_from(value)
                .map_err(|_| format!("field \"cost.jitter_ppm\" is u32; got {value}"))?;
        }
        "driver.free_implicit_sync" => cfg.driver.free_implicit_sync = as_bool(field, value)?,
        "driver.memcpy_implicit_sync" => cfg.driver.memcpy_implicit_sync = as_bool(field, value)?,
        "driver.async_dtoh_pageable_sync" => {
            cfg.driver.async_dtoh_pageable_sync = as_bool(field, value)?;
        }
        "driver.memset_unified_sync" => cfg.driver.memset_unified_sync = as_bool(field, value)?,
        "driver.unified_memset_penalty" => cfg.driver.unified_memset_penalty = value,
        "driver.device_memory_bytes" => cfg.driver.device_memory_bytes = value,
        "driver.private_api_discount" => cfg.driver.private_api_discount = as_bool(field, value)?,
        "analysis.misplaced_threshold_ns" => cfg.analysis.classify.misplaced_threshold_ns = value,
        "analysis.clamp_misplaced" => cfg.analysis.benefit.clamp_misplaced = as_bool(field, value)?,
        _ => {
            return Err(format!(
                "unknown sweep field {field:?} (expected one of: {})",
                SWEEPABLE_FIELDS.join(", ")
            ))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_field_is_settable() {
        for field in SWEEPABLE_FIELDS {
            let mut cfg = FfmConfig::default();
            set_field(&mut cfg, field, 1).unwrap_or_else(|e| panic!("{field}: {e}"));
        }
    }

    #[test]
    fn unknown_field_and_bad_bool_are_rejected() {
        let mut cfg = FfmConfig::default();
        assert!(set_field(&mut cfg, "cost.nope", 1).is_err());
        assert!(set_field(&mut cfg, "banana", 1).is_err());
        assert!(set_field(&mut cfg, "driver.free_implicit_sync", 2).is_err());
        assert!(set_field(&mut cfg, "cost.jitter_ppm", u64::MAX).is_err());
    }

    #[test]
    fn cartesian_expansion_order_is_row_major() {
        let spec = SweepSpec::new(FfmConfig::default())
            .axis("cost.free_base_ns", vec![1, 2])
            .axis("driver.unified_memset_penalty", vec![10, 20, 30]);
        let points = spec.expand().unwrap();
        assert_eq!(points.len(), 6);
        let got: Vec<(u64, u64)> =
            points.iter().map(|p| (p.assignment[0].1, p.assignment[1].1)).collect();
        assert_eq!(got, vec![(1, 10), (1, 20), (1, 30), (2, 10), (2, 20), (2, 30)]);
        assert_eq!(points[3].cfg.cost.free_base_ns, 2);
        assert_eq!(points[3].cfg.driver.unified_memset_penalty, 10);
    }

    #[test]
    fn paired_expansion_zips_and_checks_lengths() {
        let spec = SweepSpec::new(FfmConfig::default())
            .axis("cost.free_base_ns", vec![1, 2])
            .axis("driver.unified_memset_penalty", vec![10, 20])
            .paired();
        let points = spec.expand().unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[1].cfg.cost.free_base_ns, 2);
        assert_eq!(points[1].cfg.driver.unified_memset_penalty, 20);

        let bad = SweepSpec::new(FfmConfig::default())
            .axis("cost.free_base_ns", vec![1, 2])
            .axis("driver.unified_memset_penalty", vec![10])
            .paired();
        assert!(bad.expand().is_err());
    }

    #[test]
    fn empty_axis_and_typo_fail_before_any_run() {
        assert!(SweepSpec::new(FfmConfig::default())
            .axis("cost.free_base_ns", vec![])
            .expand()
            .is_err());
        assert!(SweepSpec::new(FfmConfig::default())
            .axis("cost.free_base_nss", vec![1])
            .expand()
            .is_err());
    }

    #[test]
    fn summary_picks_first_extremes_deterministically() {
        let mk = |benefit: Ns, ovh: f64| SweepCell {
            assignment: vec![],
            baseline_exec_ns: 100,
            total_benefit_ns: benefit,
            benefit_pct: 0.0,
            problem_count: 0,
            sync_issues: 0,
            transfer_issues: 0,
            sequence_count: 0,
            collection_overhead_factor: ovh,
        };
        let cells = vec![mk(5, 2.0), mk(9, 1.0), mk(5, 2.0), mk(1, 3.0)];
        let s = SweepMatrix::summarize(&cells);
        assert_eq!(s.min_benefit, Some(3));
        assert_eq!(s.max_benefit, Some(1));
        assert_eq!(s.min_overhead, Some(1));
        assert_eq!(s.max_overhead, Some(3));
        assert_eq!(SweepMatrix::summarize(&[]).max_benefit, None);
    }
}
