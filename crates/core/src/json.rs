//! A small JSON document model, emitter and parser.
//!
//! Diogenes exports its results as JSON so other tools can consume them
//! (paper §4). The offline dependency set for this reproduction does not
//! include a JSON crate, so this module provides the ~minimal value
//! model + spec-compliant string escaping the export needs, plus a
//! recursive-descent parser used by the sweep shard-merge path.
//!
//! Round-trip contract: for any document this module emitted,
//! `Json::parse(doc).to_string_pretty()` reproduces the input bytes
//! exactly — object key order is preserved, integers stay exact `i128`s,
//! and floats re-render via the shortest-round-trip `Display`, so a
//! merged sweep artifact can be byte-identical to an unsharded one.

use std::fmt::{self, Write as _};
use std::io;

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integers are kept exact (virtual-time nanoseconds exceed f64's
    /// integer range in long runs).
    Int(i128),
    Float(f64),
    Str(String),
    /// A borrowed string with program lifetime (API names, problem
    /// labels, interned file paths). Serializes exactly like [`Json::Str`]
    /// but costs no allocation to build.
    Static(&'static str),
    /// An interned symbol ([`crate::intern::Sym`]), resolved to its text
    /// at write time. Lets exporters stream straight from columnar
    /// analysis structures that store `u32` symbol ids.
    Sym(crate::intern::Sym),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Equality is by *content*: `Str`, `Static` and `Sym` values holding the
/// same text compare equal, matching the byte-identity contract (all
/// three serialize identically, and the parser always produces `Str`).
impl PartialEq for Json {
    fn eq(&self, other: &Json) -> bool {
        match (self.text(), other.text()) {
            (Some(a), Some(b)) => return a == b,
            (None, None) => {}
            _ => return false,
        }
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::Int(a), Json::Int(b)) => a == b,
            (Json::Float(a), Json::Float(b)) => a == b,
            (Json::Arr(a), Json::Arr(b)) => a == b,
            (Json::Obj(a), Json::Obj(b)) => a == b,
            _ => false,
        }
    }
}

impl Json {
    /// Object builder convenience.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Array from an iterator of values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Compact serialization.
    pub fn to_string_compact(&self) -> String {
        let mut s = String::new();
        let _ = self.write(&mut s, None, 0); // writing to a String never fails
        s
    }

    /// Pretty serialization with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut s = String::new();
        let _ = self.write(&mut s, Some(2), 0);
        s.push('\n');
        s
    }

    /// Stream the pretty serialization into an [`io::Write`] without
    /// materializing the document as one big `String` first. Produces
    /// exactly the bytes of [`Json::to_string_pretty`]. Callers should
    /// hand in a `BufWriter` — the emitter writes many small pieces.
    pub fn write_pretty<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        let mut sink = IoFmt { w, err: None };
        let res = self.write(&mut sink, Some(2), 0).and_then(|()| sink.write_char('\n'));
        match res {
            Ok(()) => Ok(()),
            Err(_) => Err(sink.err.unwrap_or_else(|| io::Error::other("formatting failed"))),
        }
    }

    /// Parse a JSON document. Numbers without a fraction or exponent stay
    /// exact ([`Json::Int`], `i128`); everything else becomes
    /// [`Json::Float`]. Object key order is preserved.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric value as `f64` (accepts both `Int` and `Float`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        self.text()
    }

    /// Text content of any string-like variant.
    fn text(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            Json::Static(s) => Some(s),
            Json::Sym(sym) => Some(sym.resolve()),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    fn write<W: fmt::Write>(
        &self,
        out: &mut W,
        indent: Option<usize>,
        depth: usize,
    ) -> fmt::Result {
        match self {
            Json::Null => out.write_str("null")?,
            Json::Bool(b) => out.write_str(if *b { "true" } else { "false" })?,
            Json::Int(i) => write!(out, "{i}")?,
            Json::Float(f) => {
                if f.is_finite() {
                    write!(out, "{f}")?;
                } else {
                    out.write_str("null")?; // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => escape_into(s, out)?,
            Json::Static(s) => escape_into(s, out)?,
            Json::Sym(sym) => escape_into(sym.resolve(), out)?,
            Json::Arr(items) => {
                if items.is_empty() {
                    return out.write_str("[]");
                }
                out.write_char('[')?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    newline_indent(out, indent, depth + 1)?;
                    item.write(out, indent, depth + 1)?;
                }
                newline_indent(out, indent, depth)?;
                out.write_char(']')?;
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    return out.write_str("{}");
                }
                out.write_char('{')?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    newline_indent(out, indent, depth + 1)?;
                    escape_into(k, out)?;
                    out.write_char(':')?;
                    if indent.is_some() {
                        out.write_char(' ')?;
                    }
                    v.write(out, indent, depth + 1)?;
                }
                newline_indent(out, indent, depth)?;
                out.write_char('}')?;
            }
        }
        Ok(())
    }
}

/// Bridges `fmt::Write` onto an `io::Write`, stashing the first I/O error
/// so [`Json::write_pretty`] can surface it (the `fmt` error type carries
/// no payload).
struct IoFmt<'a, W: io::Write> {
    w: &'a mut W,
    err: Option<io::Error>,
}

impl<W: io::Write> fmt::Write for IoFmt<'_, W> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.w.write_all(s.as_bytes()).map_err(|e| {
            self.err.get_or_insert(e);
            fmt::Error
        })
    }
}

/// Recursion guard for the parser: deeper documents are rejected rather
/// than risking a stack overflow on adversarial input.
const MAX_PARSE_DEPTH: usize = 512;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_PARSE_DEPTH {
            return Err("document nested too deeply".to_string());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte {:#04x} at {}", b, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is a &str, so the byte range is valid UTF-8 as
                // long as it ends on a boundary — and it does, because the
                // stop bytes above are all ASCII.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 1;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| format!("invalid codepoint {cp:#x}"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                Some(b) => return Err(format!("raw control byte {:#04x} in string", b)),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "non-ascii in \\u escape".to_string())?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad hex in \\u escape".to_string())?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-ascii in number".to_string())?;
        if is_float {
            text.parse::<f64>().map(Json::Float).map_err(|_| format!("bad number '{text}'"))
        } else {
            text.parse::<i128>().map(Json::Int).map_err(|_| format!("bad integer '{text}'"))
        }
    }
}

fn newline_indent<W: fmt::Write>(out: &mut W, indent: Option<usize>, depth: usize) -> fmt::Result {
    if let Some(width) = indent {
        out.write_char('\n')?;
        for _ in 0..depth * width {
            out.write_char(' ')?;
        }
    }
    Ok(())
}

fn escape_into<W: fmt::Write>(s: &str, out: &mut W) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<crate::intern::Sym> for Json {
    fn from(sym: crate::intern::Sym) -> Json {
        Json::Sym(sym)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(v as i128)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i128)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.to_string_compact(), "null");
        assert_eq!(Json::Bool(true).to_string_compact(), "true");
        assert_eq!(Json::Int(-42).to_string_compact(), "-42");
        assert_eq!(Json::Float(1.5).to_string_compact(), "1.5");
        assert_eq!(Json::Float(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::from("hi").to_string_compact(), "\"hi\"");
    }

    #[test]
    fn string_escaping_is_spec_compliant() {
        let s = Json::Str("a\"b\\c\nd\te\u{1}".to_string());
        assert_eq!(s.to_string_compact(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn nested_structures_compact() {
        let j = Json::obj([
            ("name", "als".into()),
            ("times", Json::arr([Json::Int(1), Json::Int(2)])),
            ("empty", Json::Arr(vec![])),
            ("emptyo", Json::Obj(vec![])),
        ]);
        assert_eq!(j.to_string_compact(), r#"{"name":"als","times":[1,2],"empty":[],"emptyo":{}}"#);
    }

    #[test]
    fn pretty_output_is_indented_and_reparsable_shape() {
        let j = Json::obj([("a", Json::Int(1)), ("b", Json::arr([Json::Bool(false)]))]);
        let p = j.to_string_pretty();
        assert!(p.contains("\n  \"a\": 1,"));
        assert!(p.ends_with("}\n"));
    }

    #[test]
    fn write_pretty_streams_the_same_bytes_as_to_string_pretty() {
        let j = Json::obj([
            ("name", "als\"x".into()),
            ("nan", Json::Float(f64::NAN)),
            ("rows", Json::arr([Json::obj([("n", Json::Int(7))]), Json::Null])),
        ]);
        let mut buf = Vec::new();
        j.write_pretty(&mut buf).unwrap();
        assert_eq!(buf, j.to_string_pretty().into_bytes());
    }

    #[test]
    fn write_pretty_surfaces_io_errors() {
        struct Full;
        impl io::Write for Full {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let err = Json::Int(1).write_pretty(&mut Full).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
    }

    #[test]
    fn big_integers_stay_exact() {
        let big: u64 = u64::MAX;
        assert_eq!(Json::from(big).to_string_compact(), big.to_string());
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("2e3").unwrap(), Json::Float(2000.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::from("hi"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parse_string_escapes() {
        let j = Json::parse(r#""a\"b\\c\nd\te\u0001 é 😀""#).unwrap();
        assert_eq!(j, Json::Str("a\"b\\c\nd\te\u{1} é 😀".to_string()));
        assert!(Json::parse(r#""\ud83d""#).is_err()); // lone high surrogate
        assert!(Json::parse(r#""\udc00""#).is_err()); // lone low surrogate
    }

    #[test]
    fn parse_preserves_key_order_and_accessors_work() {
        let j = Json::parse(r#"{"z":1,"a":{"k":[true,null]},"f":2.5}"#).unwrap();
        let keys: Vec<&str> = j.as_obj().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a", "f"]);
        assert_eq!(j.get("z").unwrap().as_i128(), Some(1));
        assert_eq!(j.get("f").unwrap().as_f64(), Some(2.5));
        let arr = j.get("a").unwrap().get("k").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert!(j.get("missing").is_none());
        assert!(Json::Int(3).get("x").is_none());
    }

    #[test]
    fn emit_parse_emit_is_byte_identical() {
        // The contract the shard-merge path relies on: re-emitting a parsed
        // document reproduces the original bytes exactly.
        let doc = Json::obj([
            ("app", "als".into()),
            ("big", Json::Int(i128::from(u64::MAX) * 3)),
            ("neg", Json::Int(-7)),
            ("pct", Json::Float(12.345678901234567)),
            ("tiny", Json::Float(0.1)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            ("text", Json::Str("quote \" slash \\ tab\t".to_string())),
            (
                "cells",
                Json::arr([
                    Json::obj([("k", Json::Int(1)), ("v", Json::Float(2.25))]),
                    Json::obj([("k", Json::Int(2)), ("v", Json::Float(0.5))]),
                ]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        for rendered in [doc.to_string_pretty(), doc.to_string_compact()] {
            let reparsed = Json::parse(&rendered).unwrap();
            assert_eq!(reparsed, doc);
        }
        let pretty = doc.to_string_pretty();
        assert_eq!(Json::parse(&pretty).unwrap().to_string_pretty(), pretty);
        let compact = doc.to_string_compact();
        assert_eq!(Json::parse(&compact).unwrap().to_string_compact(), compact);

        // Integral floats render without a fraction, so they re-parse as
        // Int — different AST, same bytes. Byte-stability is what the
        // merge path needs.
        let f = Json::Float(2.0);
        assert_eq!(f.to_string_compact(), "2");
        let reparsed = Json::parse("2").unwrap();
        assert_eq!(reparsed, Json::Int(2));
        assert_eq!(reparsed.to_string_compact(), f.to_string_compact());
    }

    #[test]
    fn string_like_variants_are_interchangeable() {
        let sym = crate::intern::intern("als.cpp");
        let as_sym = Json::Sym(sym);
        let as_static = Json::Static("als.cpp");
        let as_str = Json::Str("als.cpp".to_string());
        // Identical bytes out...
        assert_eq!(as_sym.to_string_compact(), "\"als.cpp\"");
        assert_eq!(as_static.to_string_compact(), as_str.to_string_compact());
        // ...content-based equality across variants (the parser always
        // yields Str, so round-trip comparisons depend on this)...
        assert_eq!(as_sym, as_str);
        assert_eq!(as_static, as_str);
        assert_eq!(Json::parse("\"als.cpp\"").unwrap(), as_sym);
        assert_ne!(as_sym, Json::Static("other.cpp"));
        assert_ne!(as_static, Json::Null);
        // ...and uniform accessor behavior.
        assert_eq!(as_sym.as_str(), Some("als.cpp"));
        assert_eq!(as_static.as_str(), Some("als.cpp"));
        // Escaping applies to borrowed variants too.
        assert_eq!(Json::Static("a\"b").to_string_compact(), "\"a\\\"b\"");
    }

    #[test]
    fn parse_depth_is_bounded() {
        let deep = "[".repeat(600) + &"]".repeat(600);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&ok).is_ok());
    }
}
