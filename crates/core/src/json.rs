//! A small JSON document model and emitter.
//!
//! Diogenes exports its results as JSON so other tools can consume them
//! (paper §4). The offline dependency set for this reproduction does not
//! include a JSON crate, so this module provides the ~minimal value
//! model + spec-compliant string escaping the export needs.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integers are kept exact (virtual-time nanoseconds exceed f64's
    /// integer range in long runs).
    Int(i128),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object builder convenience.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Array from an iterator of values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Compact serialization.
    pub fn to_string_compact(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        s
    }

    /// Pretty serialization with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, Some(2), 0);
        s.push('\n');
        s
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    escape_into(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(v as i128)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i128)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.to_string_compact(), "null");
        assert_eq!(Json::Bool(true).to_string_compact(), "true");
        assert_eq!(Json::Int(-42).to_string_compact(), "-42");
        assert_eq!(Json::Float(1.5).to_string_compact(), "1.5");
        assert_eq!(Json::Float(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::from("hi").to_string_compact(), "\"hi\"");
    }

    #[test]
    fn string_escaping_is_spec_compliant() {
        let s = Json::Str("a\"b\\c\nd\te\u{1}".to_string());
        assert_eq!(s.to_string_compact(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn nested_structures_compact() {
        let j = Json::obj([
            ("name", "als".into()),
            ("times", Json::arr([Json::Int(1), Json::Int(2)])),
            ("empty", Json::Arr(vec![])),
            ("emptyo", Json::Obj(vec![])),
        ]);
        assert_eq!(j.to_string_compact(), r#"{"name":"als","times":[1,2],"empty":[],"emptyo":{}}"#);
    }

    #[test]
    fn pretty_output_is_indented_and_reparsable_shape() {
        let j = Json::obj([("a", Json::Int(1)), ("b", Json::arr([Json::Bool(false)]))]);
        let p = j.to_string_pretty();
        assert!(p.contains("\n  \"a\": 1,"));
        assert!(p.ends_with("}\n"));
    }

    #[test]
    fn big_integers_stay_exact() {
        let big: u64 = u64::MAX;
        assert_eq!(Json::from(big).to_string_compact(), big.to_string());
    }
}
