//! # criterion (offline shim)
//!
//! The build environment has **no network access**, so the real
//! crates.io `criterion` cannot be fetched. This path crate implements
//! the subset of its API that the workspace's `[[bench]]` targets use,
//! as a plain wall-clock harness:
//!
//! * [`Criterion::bench_function`] / [`Criterion::benchmark_group`] /
//!   [`BenchmarkGroup::bench_with_input`]
//! * [`Bencher::iter`]
//! * [`BenchmarkId::from_parameter`], [`Throughput::Bytes`]
//! * [`black_box`], [`criterion_group!`], [`criterion_main!`]
//!
//! Each benchmark runs a short warmup, then `sample_size` timed samples
//! (batching iterations so one sample is long enough to time), and
//! prints the median per-iteration latency — plus throughput when the
//! group declared one. There is no statistics engine, HTML report, or
//! baseline comparison; the numbers are honest medians and nothing more.

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock time for one timed sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);

/// Top-level harness handle, one per `criterion_group!` run.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 30 }
    }
}

impl Criterion {
    /// Builder-style sample count override (min 2, as upstream enforces
    /// a floor).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, None, &mut f);
        self
    }

    /// Open a named group; IDs inside it render as `group/id`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), throughput: None }
    }
}

/// A group of related benchmarks sharing a name prefix and optional
/// throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a per-iteration data volume;
    /// the report then includes a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(&full, self.criterion.sample_size, self.throughput, &mut |b| f(b, input));
        self
    }

    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(&full, self.criterion.sample_size, self.throughput, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Identifier for one parameterized benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter<P: Display>(p: P) -> Self {
        Self(p.to_string())
    }

    pub fn new<P: Display>(function: &str, p: P) -> Self {
        Self(format!("{function}/{p}"))
    }
}

/// Per-iteration data volume for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Passed to the benchmark closure; calls [`Bencher::iter`] to time the
/// routine.
pub struct Bencher {
    batch: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Calibrate a batch size, take samples, print the median.
fn run_one(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Warmup + calibration: grow the batch until one sample is long
    // enough to time reliably.
    let mut batch = 1u64;
    loop {
        let mut b = Bencher { batch, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= SAMPLE_TARGET || batch >= 1 << 20 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            16
        } else {
            (SAMPLE_TARGET.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 16) as u64
        };
        batch = batch.saturating_mul(grow);
    }

    let mut per_iter: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher { batch, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / batch as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];

    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  {:>10}/s", human_bytes(n as f64 / (median * 1e-9)))
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:>10.0} elem/s", n as f64 / (median * 1e-9))
        }
        None => String::new(),
    };
    println!("{name:<55} {:>12}/iter{rate}", human_time(median));
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn human_bytes(bps: f64) -> String {
    if bps < 1024.0 {
        format!("{bps:.0} B")
    } else if bps < 1024.0 * 1024.0 {
        format!("{:.1} KiB", bps / 1024.0)
    } else if bps < 1024.0 * 1024.0 * 1024.0 {
        format!("{:.1} MiB", bps / (1024.0 * 1024.0))
    } else {
        format!("{:.2} GiB", bps / (1024.0 * 1024.0 * 1024.0))
    }
}

/// Both upstream forms: `criterion_group!(name, targets...)` and the
/// braced `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    ( name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)? ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ( $name:ident, $($target:path),+ $(,)? ) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as Default>::default();
            targets = $($target),+
        }
    };
}

/// Entry point for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default().sample_size(2)
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut ran = 0u64;
        quick().bench_function("shim/self_test", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_with_throughput_runs() {
        let mut c = quick();
        let mut g = c.benchmark_group("shim_group");
        g.throughput(Throughput::Bytes(64));
        g.bench_with_input(BenchmarkId::from_parameter(64), &vec![1u8; 64], |b, v| {
            b.iter(|| v.iter().map(|&x| x as u64).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn units_format() {
        assert_eq!(human_time(12.0), "12.0 ns");
        assert_eq!(human_time(1_500.0), "1.50 µs");
        assert_eq!(human_time(2_500_000.0), "2.50 ms");
        assert!(human_bytes(2.0 * 1024.0 * 1024.0 * 1024.0).ends_with("GiB"));
    }
}
