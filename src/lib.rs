//! # diogenes-repro — umbrella crate
//!
//! Re-exports the whole reproduction of *"Diogenes: Looking For An Honest
//! CPU/GPU Performance Measurement Tool"* (Welton & Miller, SC '19) so
//! downstream users can depend on a single crate. See the individual
//! crates for the full documentation:
//!
//! * [`gpu_sim`] — the discrete-event CPU/GPU simulator substrate.
//! * [`cuda_driver`] — the simulated CUDA driver with the paper's hidden
//!   synchronization semantics.
//! * [`cupti_sim`] — the vendor collection framework, gaps included.
//! * [`instrument`] — binary-instrumentation primitives (the Dyninst role).
//! * [`ffm_core`] — the feed-forward measurement model (the contribution).
//! * [`diogenes_apps`] — the four evaluation applications + fixed builds.
//! * [`profilers`] — NVProf / HPCToolkit baseline models.
//! * [`diogenes`] — the tool: pipeline orchestration, CLI views, export.

pub use cuda_driver;
pub use cupti_sim;
pub use diogenes;
pub use diogenes_apps;
pub use ffm_core;
pub use gpu_sim;
pub use instrument;
pub use profilers;
