#!/usr/bin/env sh
# Offline CI for the Diogenes reproduction workspace.
#
# Everything here runs without network access: the workspace has no
# registry dependencies (proptest/criterion are in-repo shims under
# crates/), so `cargo` never needs to touch crates.io.
#
# Usage: scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "== format =="
cargo fmt --check

echo "== clippy (deny warnings + allocation-churn lints) =="
CLIPPY_DENY="-D warnings -D clippy::redundant_clone -D clippy::inefficient_to_string"
# shellcheck disable=SC2086
cargo clippy --workspace --all-targets -- $CLIPPY_DENY
# shellcheck disable=SC2086
cargo clippy --workspace --all-targets --features extern-testing -- $CLIPPY_DENY

echo "== tier-1: build + test =="
cargo build --release
cargo test -q

echo "== full workspace tests =="
cargo test -q --workspace

echo "== sweep determinism (jobs=1 vs jobs=N bit-identical SWEEP json) =="
cargo test -q -p diogenes --test sweep_determinism
cargo test -q -p diogenes --test sequential_no_threads

echo "== telemetry determinism (profiling on/off bit-identical reports) =="
cargo test -q -p diogenes --test telemetry_determinism

echo "== observability identity (flight recorder on/off bit-identical reports) =="
cargo test -q -p diogenes --test observability_identity
cargo test -q -p diogenes --test serve_observability

echo "== cache determinism (no-cache/cold/warm bit-identical SWEEP json) =="
cargo test -q -p diogenes --test cache_determinism

echo "== shard merge (--shard k/n + --merge == unsharded, byte-identical) =="
cargo test -q -p diogenes --test shard_merge

echo "== telemetry smoke (--profile writes a valid self-trace) =="
cargo build --release -p diogenes
./target/release/diogenes als --profile --jobs 4 > /dev/null
python3 - <<'EOF'
import json
d = json.load(open('results/TELEMETRY_cumf_als.json'))
spans = {s['name'] for s in d['spans']}
expected = {'run_ffm', 'stage1-baseline', 'stage2-detailed-tracing',
            'stage3a-memory-tracing', 'stage3b-data-hashing',
            'stage4-sync-use', 'stage5-analysis'}
missing = expected - spans
assert not missing, f'missing stage spans: {missing}'
phs = {e['ph'] for e in d['traceEvents']}
assert {'M', 'X'} <= phs, f'trace needs metadata + duration events, got {phs}'
assert any(w['thread'].startswith('ffm-pool-') for w in d['workers']), \
    f"no pool-worker track: {[w['thread'] for w in d['workers']]}"
print(f"telemetry smoke ok: {len(d['traceEvents'])} trace events, "
      f"{len(d['workers'])} worker tracks, {len(d['counters'])} counters")
EOF

echo "== sweep shard/merge smoke (CLI round trip, byte-identical) =="
SMOKE=$(mktemp -d)
./target/release/diogenes sweep als --jobs 2 --no-cache \
    --out "$SMOKE/full.json" > /dev/null 2>&1
./target/release/diogenes sweep als --jobs 2 --cache-dir "$SMOKE/cache" \
    --shard 1/2 --out "$SMOKE/s1.json" > /dev/null 2>&1
./target/release/diogenes sweep als --jobs 2 --cache-dir "$SMOKE/cache" \
    --shard 2/2 --out "$SMOKE/s2.json" > /dev/null 2>&1
./target/release/diogenes sweep als --merge --in "$SMOKE/s1.json" \
    --in "$SMOKE/s2.json" --out "$SMOKE/merged.json" > /dev/null 2>&1
cmp "$SMOKE/full.json" "$SMOKE/merged.json"
./target/release/diogenes cache --dir "$SMOKE/cache" | grep -q "entries"
./target/release/diogenes cache --dir "$SMOKE/cache" --clear-all > /dev/null
rm -rf "$SMOKE"
echo "shard/merge smoke ok"

echo "== FFB round trip (report json == bin->json convert, every job count) =="
FFB=$(mktemp -d)
for jobs in 1 4; do
    ./target/release/diogenes als --jobs "$jobs" \
        --json "$FFB/report-$jobs.json" > /dev/null
    ./target/release/diogenes als --jobs "$jobs" --format bin \
        --json "$FFB/report-$jobs.ffb" > /dev/null
    ./target/release/diogenes convert "$FFB/report-$jobs.ffb" \
        "$FFB/report-$jobs-back.json" > /dev/null
    cmp "$FFB/report-$jobs.json" "$FFB/report-$jobs-back.json"
done
cmp "$FFB/report-1.json" "$FFB/report-4.json"

echo "== FFB shard merge smoke (binary + JSON shards, byte-identical) =="
./target/release/diogenes sweep als --jobs 2 --cache-dir "$FFB/cache" \
    --shard 1/2 --format bin --out "$FFB/s1.ffb" > /dev/null 2>&1
./target/release/diogenes sweep als --jobs 2 --cache-dir "$FFB/cache" \
    --shard 2/2 --out "$FFB/s2.json" > /dev/null 2>&1
./target/release/diogenes sweep als --jobs 2 --no-cache \
    --out "$FFB/full.json" > /dev/null 2>&1
./target/release/diogenes sweep als --merge --in "$FFB/s1.ffb" \
    --in "$FFB/s2.json" --out "$FFB/merged.json" > /dev/null 2>&1
cmp "$FFB/full.json" "$FFB/merged.json"
echo "ffb round-trip smoke ok"

echo "== zero-copy ingestion (mmap vs read-fallback byte-identical) =="
# The same binary artifact is ingested twice: once through the default
# mmap path, once with DIOGENES_NO_MMAP forcing the pooled read
# fallback. Both must convert to byte-identical JSON.
./target/release/diogenes convert "$FFB/report-1.ffb" \
    "$FFB/mmap.json" > /dev/null
DIOGENES_NO_MMAP=1 ./target/release/diogenes convert "$FFB/report-1.ffb" \
    "$FFB/fallback.json" > /dev/null
cmp "$FFB/mmap.json" "$FFB/fallback.json"
./target/release/diogenes sweep als --merge --in "$FFB/s1.ffb" \
    --in "$FFB/s2.json" --out "$FFB/merged-mmap.json" > /dev/null 2>&1
DIOGENES_NO_MMAP=1 ./target/release/diogenes sweep als --merge --in "$FFB/s1.ffb" \
    --in "$FFB/s2.json" --out "$FFB/merged-fallback.json" > /dev/null 2>&1
cmp "$FFB/merged-mmap.json" "$FFB/merged-fallback.json"
cmp "$FFB/merged-mmap.json" "$FFB/merged.json"
rm -rf "$FFB"
echo "zero-copy ingestion smoke ok"

echo "== serve smoke (daemon report byte-identical to CLI, /metrics + /trace live, clean drain) =="
SERVE=$(mktemp -d)
./target/release/diogenes als --jobs 2 --json "$SERVE/cli.json" > /dev/null
./target/release/diogenes serve --addr 127.0.0.1:0 --no-cache \
    --flight-recorder-bytes 1048576 \
    > "$SERVE/serve.log" 2> /dev/null &
SERVE_PID=$!
# The first stdout line announces the bound (ephemeral) address.
i=0
while ! grep -q "listening on" "$SERVE/serve.log" 2> /dev/null; do
    i=$((i + 1))
    [ "$i" -le 100 ] || { echo "serve never announced its address"; exit 1; }
    kill -0 "$SERVE_PID" 2> /dev/null || { echo "serve died on startup"; exit 1; }
    sleep 0.1
done
SERVE_ADDR=$(awk '/listening on/ {print $NF; exit}' "$SERVE/serve.log")
SERVE_DIR="$SERVE" SERVE_ADDR="$SERVE_ADDR" python3 - <<'EOF'
import http.client, json, os, sys, time

addr = os.environ['SERVE_ADDR']
host, port = addr.rsplit(':', 1)
out = os.path.join(os.environ['SERVE_DIR'], 'served.json')

def req(method, path, body=None):
    c = http.client.HTTPConnection(host, int(port), timeout=30)
    c.request(method, path, body)
    r = c.getresponse()
    data = r.read()
    c.close()
    return r.status, data

status, body = req('POST', '/run', json.dumps({'app': 'als'}))
assert status == 200, (status, body)
sub = json.loads(body)
location = sub['location']
for _ in range(600):
    status, body = req('GET', location)
    if status != 202:
        break
    time.sleep(0.1)
assert status == 200, (status, body)
open(out, 'wb').write(body)

status, body = req('GET', '/stats')
assert status == 200, (status, body)
stats = json.loads(body)
assert stats['jobs']['computed'] == 1, stats
assert stats['jobs']['failed'] == 0, stats
assert stats['jobs']['rejected'] == 0 and stats['jobs']['evicted'] == 0, stats
assert 'queue_depth' in stats and 'live_claims' in stats['cache'], stats

# /metrics: Prometheus text exposition with the daemon's live counters.
status, body = req('GET', '/metrics')
assert status == 200, (status, body)
text = body.decode()
assert text.endswith('\n'), 'exposition must end with a newline'
lines = [l for l in text.splitlines() if l]
helps = [l for l in lines if l.startswith('# HELP ')]
types = [l for l in lines if l.startswith('# TYPE ')]
samples = [l for l in lines if not l.startswith('#')]
assert len(helps) == len(types) and len(types) > 10, (len(helps), len(types))
for l in samples:
    name, _, value = l.rpartition(' ')
    assert name, f'unparseable sample line {l!r}'
    float(value)  # every sample value is numeric
def sample(head):
    hits = [l for l in samples if l.startswith(head)]
    assert hits, f'no sample {head!r} in exposition'
    return float(hits[0].rpartition(' ')[2])
assert sample('diogenes_http_requests_total{route="POST /run"}') >= 1
assert sample('diogenes_http_request_duration_ns_count{route="POST /run"}') >= 1
assert sample('diogenes_jobs_computed_total') == 1
assert sample('diogenes_flight_recorder_events') > 0
assert sample('diogenes_flight_recorder_bytes') <= sample('diogenes_flight_recorder_budget_bytes')
# Zero-copy ingestion: every request body lands in a pooled buffer that
# is recycled after the response — by this point (several requests into
# the session) the pool must be seeing reuse.
assert sample('diogenes_ingest_buffer_reuse_total') >= 1
assert sample('diogenes_ingest_buffer_allocs_total') >= 1

# /trace: the flight recorder dumps as a Chrome trace; validated
# structurally by `diogenes trace-check` after shutdown.
status, body = req('GET', '/trace')
assert status == 200, (status, body)
trace = json.loads(body)
durations = [e for e in trace['traceEvents'] if e['ph'] == 'X']
assert durations, 'flight dump has no duration events'
assert any(e['name'].startswith('serve.job') for e in durations), \
    f'no serve.job span in {[e["name"] for e in durations][:10]}'
open(os.path.join(os.environ['SERVE_DIR'], 'trace.json'), 'wb').write(body)

status, body = req('POST', '/shutdown')
assert status == 200, (status, body)
print(f"serve smoke ok: report {len(open(out,'rb').read())} bytes, "
      f"{len(samples)} metric samples, {len(durations)} flight spans, "
      f"stats {stats['jobs']}")
EOF
wait "$SERVE_PID"
cmp "$SERVE/cli.json" "$SERVE/served.json"
./target/release/diogenes trace-check "$SERVE/trace.json"
rm -rf "$SERVE"

echo "== codec allocation smoke (zero steady-state allocations in FFB decode) =="
cargo build --release -p diogenes-bench --bin bench_codec
./target/release/bench_codec --smoke

echo "== columnar identity (reports/sweeps byte-identical to pinned artifacts) =="
cargo test -q -p diogenes --test columnar_identity

echo "== analysis allocation smoke (zero steady-state allocations in grouping) =="
cargo build --release -p diogenes-bench --bin bench_analysis
./target/release/bench_analysis --smoke

echo "== streaming determinism (windowed incremental byte-identical to batch) =="
cargo test -q -p diogenes --test streaming_identity
STREAM=$(mktemp -d)
./target/release/diogenes als --jobs 2 --json "$STREAM/batch.json" > /dev/null
./target/release/diogenes als --jobs 2 --stream-window 64 \
    --json "$STREAM/stream.json" > /dev/null
cmp "$STREAM/batch.json" "$STREAM/stream.json"
rm -rf "$STREAM"
echo "streaming determinism ok"

echo "== streaming allocation smoke (zero steady-state allocations in fold loop) =="
cargo build --release -p diogenes-bench --bin bench_stream
./target/release/bench_stream --smoke

echo "== flight recorder smoke (zero steady-state allocations, ring in budget) =="
cargo build --release -p diogenes-bench --bin bench_flight
./target/release/bench_flight --smoke

echo "== property tests (extern-testing feature) =="
cargo test -q --workspace --features extern-testing

echo "ci: all green"
