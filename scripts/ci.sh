#!/usr/bin/env sh
# Offline CI for the Diogenes reproduction workspace.
#
# Everything here runs without network access: the workspace has no
# registry dependencies (proptest/criterion are in-repo shims under
# crates/), so `cargo` never needs to touch crates.io.
#
# Usage: scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "== format =="
cargo fmt --check

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy --workspace --all-targets --features extern-testing -- -D warnings

echo "== tier-1: build + test =="
cargo build --release
cargo test -q

echo "== full workspace tests =="
cargo test -q --workspace

echo "== sweep determinism (jobs=1 vs jobs=N bit-identical SWEEP json) =="
cargo test -q -p diogenes --test sweep_determinism
cargo test -q -p diogenes --test sequential_no_threads

echo "== property tests (extern-testing feature) =="
cargo test -q --workspace --features extern-testing

echo "ci: all green"
